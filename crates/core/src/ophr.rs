//! Optimal Prefix Hit Recursion (paper §4.1).
//!
//! OPHR computes the maximum achievable PHC by considering, for every column
//! `c` and every distinct value `v` in it, the split of the table into:
//!
//! * the group `R_v` of rows holding `v` in `c` — scheduled contiguously with
//!   `v` serialized first (contributing `len(v)² · (|R_v| − 1)`), recursing on
//!   `R_v` without column `c`; and
//! * the remaining rows, recursing with all columns.
//!
//! The best split is chosen by exhaustive recursion. Complexity is
//! exponential; we add two exact optimizations the paper's Python prototype
//! lacks — memoization on (row-set, column-set) keys and pruning of
//! singleton groups (a group of one row contributes nothing and is dominated
//! by scheduling that row last) — plus a wall-clock budget mirroring the
//! paper's 2-hour termination rule (Appendix D.1).
//!
//! # Implementation notes (columnar core)
//!
//! Identical in results to the frozen [`OphrReference`](crate::OphrReference)
//! transcription — all scoring is exact integer arithmetic, so the choice of
//! data structures cannot shift any optimum — but engineered for throughput:
//! memo keys are interned (row-set, column-set) id pairs hashed with a
//! multiply-xor hasher instead of per-call boxed bitsets under SipHash,
//! candidate groups are materialized once per view by a stable counting sort
//! into a flat pooled buffer, rest filtering is an O(n) columnar value
//! compare instead of `Vec::contains`, and row buffers come from a per-solve
//! pool. Equivalence is enforced by `tests/solver_differential.rs`.

use crate::fd::FunctionalDeps;
use crate::plan::{ReorderPlan, RowPlan};
use crate::scratch::{partition_rows_by_value, DeadCols, FxBuild, Scratch, SetInterner};
use crate::solver::{check_fd_arity, Reorderer, Solution, SolveError};
use crate::table::ReorderTable;
use crate::ValueId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration for [`Ophr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OphrConfig {
    /// Wall-clock budget; `None` runs to completion. The paper terminates
    /// OPHR runs exceeding 2 hours; benchmarks here default to much less.
    pub budget: Option<Duration>,
}

impl Default for OphrConfig {
    fn default() -> Self {
        OphrConfig {
            budget: Some(Duration::from_secs(30)),
        }
    }
}

/// The exact solver. Use only on small tables (tens of rows); see
/// [`Ggr`](crate::Ggr) for practical sizes.
///
/// # Examples
///
/// ```
/// use llmqo_core::{FunctionalDeps, Ophr, Reorderer, TableBuilder};
/// let mut b = TableBuilder::new(vec!["id".into(), "group".into()]);
/// b.push_row(&["a", "shared"]);
/// b.push_row(&["b", "shared"]);
/// let (t, _) = b.finish();
/// let s = Ophr::unbounded().reorder(&t, &FunctionalDeps::empty(2)).unwrap();
/// assert!(s.claimed_phc > 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ophr {
    config: OphrConfig,
}

impl Ophr {
    /// Creates a solver with the given configuration.
    pub fn new(config: OphrConfig) -> Self {
        Ophr { config }
    }

    /// A solver with no time budget (exhaustive; test-sized tables only).
    pub fn unbounded() -> Self {
        Ophr {
            config: OphrConfig { budget: None },
        }
    }

    /// A solver with the given time budget.
    pub fn with_budget(budget: Duration) -> Self {
        Ophr {
            config: OphrConfig {
                budget: Some(budget),
            },
        }
    }
}

impl Reorderer for Ophr {
    fn name(&self) -> &'static str {
        "ophr"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let deadline = self.config.budget.map(|b| start + b);
        let mut ctx = Ctx {
            table,
            memo: HashMap::default(),
            row_sets: SetInterner::new(table.nrows()),
            col_sets: SetInterner::new(table.ncols()),
            deadline,
            scratch: Scratch::for_table(table),
        };
        let rows: Vec<u32> = (0..table.nrows() as u32).collect();
        let cols: Vec<u32> = (0..table.ncols() as u32).collect();
        let claimed_phc = ctx
            .solve(&rows, &cols, DeadCols::default())
            .map_err(|TimedOut| SolveError::BudgetExceeded {
                budget: self.config.budget.unwrap_or_default(),
            })?;
        let ordered = ctx.build(&rows, &cols);
        let plan = ReorderPlan {
            rows: ordered
                .into_iter()
                .map(|(row, fields)| RowPlan::new(row as usize, fields))
                .collect(),
        };
        Ok(Solution {
            plan,
            claimed_phc,
            solve_time: start.elapsed(),
        })
    }
}

/// Budget-exhaustion marker for the recursive solver.
struct TimedOut;

/// How the optimum of a subproblem was achieved (memoized for plan
/// reconstruction without storing orderings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    /// ≤1 row, or no duplicated value anywhere: PHC 0, order as-is.
    Leaf,
    /// Single remaining column: group rows by value.
    SingleCol,
    /// Split on the group of `value` in `col`.
    Split { col: u32, value: ValueId },
}

/// One candidate split group: all rows holding `value` in `col`, stored as a
/// range into the view's flat group buffer.
struct Candidate {
    col: u32,
    value: ValueId,
    sq_len: u64,
    start: usize,
    len: usize,
}

struct Ctx<'t> {
    table: &'t ReorderTable,
    /// Memo over interned (row-set, column-set) id pairs. All scoring is
    /// integer arithmetic, so memoized optima are independent of candidate
    /// exploration order.
    memo: HashMap<(u32, u32), (u64, Choice), FxBuild>,
    row_sets: SetInterner,
    col_sets: SetInterner,
    deadline: Option<Instant>,
    scratch: Scratch,
}

impl<'t> Ctx<'t> {
    fn key(&mut self, rows: &[u32], cols: &[u32]) -> (u32, u32) {
        (self.row_sets.intern(rows), self.col_sets.intern(cols))
    }

    /// Returns the optimal PHC of the subtable (rows × cols), memoizing the
    /// winning choice. `dead` carries the columns already known group-free
    /// on this path (see [`DeadCols`]); it prunes scans only, never results.
    fn solve(&mut self, rows: &[u32], cols: &[u32], mut dead: DeadCols) -> Result<u64, TimedOut> {
        if rows.len() <= 1 {
            return Ok(0);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(TimedOut);
            }
        }
        let key = self.key(rows, cols);
        if let Some(&(score, _)) = self.memo.get(&key) {
            return Ok(score);
        }

        if cols.len() == 1 {
            let score = self.single_column_score(rows, cols[0]);
            self.memo.insert(key, (score, Choice::SingleCol));
            return Ok(score);
        }

        let (flat, candidates) = self.multi_groups(rows, cols, &mut dead);
        if candidates.is_empty() {
            // No value repeats anywhere: every ordering scores 0.
            self.scratch.pool.put(flat);
            self.memo.insert(key, (0, Choice::Leaf));
            return Ok(0);
        }

        let mut best: Option<(u64, u32, ValueId)> = None;
        let mut rest = self.scratch.pool.take();
        let mut sub_cols = self.scratch.pool.take();
        for cand in &candidates {
            let contrib = cand.sq_len * (cand.len as u64 - 1);
            // O(n) columnar rest filter: the group is exactly the rows
            // holding `value` in `col`, so the rest is a value compare away.
            let values = self.table.col_values(cand.col as usize);
            rest.clear();
            rest.extend(
                rows.iter()
                    .copied()
                    .filter(|&r| values[r as usize] != cand.value),
            );
            sub_cols.clear();
            sub_cols.extend(cols.iter().copied().filter(|&c| c != cand.col));
            let group = &flat[cand.start..cand.start + cand.len];
            let score =
                contrib + self.solve(&rest, cols, dead)? + self.solve(group, &sub_cols, dead)?;
            let better = match best {
                None => true,
                // Deterministic tiebreak: higher score, then lower column,
                // then lower value id.
                Some((bs, bc, bv)) => {
                    score > bs
                        || (score == bs && (cand.col < bc || (cand.col == bc && cand.value < bv)))
                }
            };
            if better {
                best = Some((score, cand.col, cand.value));
            }
        }
        self.scratch.pool.put(rest);
        self.scratch.pool.put(sub_cols);
        self.scratch.pool.put(flat);
        let (score, col, value) = best.expect("candidates is non-empty");
        self.memo.insert(key, (score, Choice::Split { col, value }));
        Ok(score)
    }

    /// Reconstructs the optimal ordering along the memoized choices.
    /// Every key visited here was inserted by [`Ctx::solve`].
    fn build(&mut self, rows: &[u32], cols: &[u32]) -> Vec<(u32, Vec<u32>)> {
        if rows.is_empty() {
            return Vec::new();
        }
        if rows.len() == 1 {
            return vec![(rows[0], cols.to_vec())];
        }
        let key = self.key(rows, cols);
        let (_, choice) = *self.memo.get(&key).expect("subproblem was solved");
        match choice {
            Choice::Leaf => rows.iter().map(|&r| (r, cols.to_vec())).collect(),
            Choice::SingleCol => {
                let values = self.table.col_values(cols[0] as usize);
                let mut ordered = rows.to_vec();
                ordered.sort_by_key(|&r| (values[r as usize], r));
                ordered.into_iter().map(|r| (r, cols.to_vec())).collect()
            }
            Choice::Split { col, value } => {
                let (mut group, mut rest) = (Vec::new(), Vec::new());
                partition_rows_by_value(
                    self.table.col_values(col as usize),
                    rows,
                    value,
                    &mut group,
                    &mut rest,
                );
                let sub_cols: Vec<u32> = cols.iter().copied().filter(|&c| c != col).collect();
                let mut out = Vec::with_capacity(rows.len());
                for (row, mut fields) in self.build(&group, &sub_cols) {
                    fields.insert(0, col);
                    out.push((row, fields));
                }
                out.extend(self.build(&rest, cols));
                out
            }
        }
    }

    /// Collects all groups of size ≥ 2 (singleton groups contribute 0 and
    /// are dominated by scheduling the row after the others, so they are
    /// pruned), materialized by a stable counting sort into one flat pooled
    /// buffer. Candidates are ordered by column, then value id — the same
    /// deterministic order the reference implementation explores.
    fn multi_groups(
        &mut self,
        rows: &[u32],
        cols: &[u32],
        dead: &mut DeadCols,
    ) -> (Vec<u32>, Vec<Candidate>) {
        let s = &mut self.scratch;
        let mut flat = s.pool.take();
        let mut group_starts = s.pool.take();
        let mut fill = s.pool.take();
        let mut candidates = Vec::new();
        for &c in cols {
            if dead.is_dead(c) {
                continue;
            }
            let n_groups = s.group_dense(c as usize, self.table.col_sq_lens(c as usize), rows);
            if n_groups == rows.len() {
                // Every value distinct in this view ⇒ in every sub-view too.
                dead.kill(c);
                continue;
            }
            // Stable counting sort: members of each group land contiguously,
            // in view order. `group_starts`/`fill` are indexed by the
            // group's first-seen rank (its position in `touched`).
            let base = flat.len();
            group_starts.clear();
            fill.clear();
            let mut acc = 0u32;
            for g in 0..n_groups {
                group_starts.push(acc);
                acc += s.counts[s.touched[g] as usize];
            }
            fill.extend_from_slice(&group_starts);
            flat.resize(base + rows.len(), 0);
            // Overwrite counts[d] with the group's rank so the fill pass is
            // O(1) per row (sizes are recovered from the fill cursors).
            for g in 0..n_groups {
                s.counts[s.touched[g] as usize] = g as u32;
            }
            for (k, &r) in rows.iter().enumerate() {
                let rank = s.counts[s.row_dense[k] as usize] as usize;
                flat[base + fill[rank] as usize] = r;
                fill[rank] += 1;
            }
            // Multi-member groups become candidates, ordered by value id.
            // (Group size is recovered from the fill cursors.)
            let mut multi: Vec<u32> = (0..n_groups as u32)
                .filter(|&g| fill[g as usize] - group_starts[g as usize] >= 2)
                .collect();
            multi.sort_by_key(|&g| s.value_of(c as usize, s.touched[g as usize]));
            for g in multi {
                let g = g as usize;
                let d = s.touched[g];
                candidates.push(Candidate {
                    col: c,
                    value: s.value_of(c as usize, d),
                    // The group's first view member's squared length — the
                    // reference's `members[0]` representative.
                    sq_len: s.first_sq[d as usize],
                    start: base + group_starts[g] as usize,
                    len: (fill[g] - group_starts[g]) as usize,
                });
            }
        }
        s.pool.put(group_starts);
        s.pool.put(fill);
        (flat, candidates)
    }

    /// Base case: one column. Optimal PHC groups each distinct value
    /// contiguously: Σ_v len(v)² · (count(v) − 1).
    fn single_column_score(&mut self, rows: &[u32], col: u32) -> u64 {
        let s = &mut self.scratch;
        let n_groups = s.group_dense(col as usize, self.table.col_sq_lens(col as usize), rows);
        (0..n_groups)
            .map(|g| {
                let d = s.touched[g] as usize;
                s.first_sq[d] * u64::from(s.counts[d] - 1)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phc::phc_of_plan;
    use crate::table::Cell;

    fn c(id: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), len)
    }

    fn table(rows: &[&[(u32, u32)]]) -> ReorderTable {
        let m = rows[0].len();
        let cols = (0..m).map(|i| format!("c{i}")).collect();
        let mut t = ReorderTable::new(cols).unwrap();
        for row in rows {
            // Unchecked: test tables pair ids with arbitrary lengths.
            t.push_row_unchecked(row.iter().map(|&(id, len)| c(id, len)).collect())
                .unwrap();
        }
        t
    }

    fn solve(t: &ReorderTable) -> Solution {
        let s = Ophr::unbounded()
            .reorder(t, &FunctionalDeps::empty(t.ncols()))
            .unwrap();
        s.plan.validate(t).unwrap();
        assert_eq!(
            s.claimed_phc,
            phc_of_plan(t, &s.plan).phc,
            "OPHR's claimed score must be exact"
        );
        s
    }

    #[test]
    fn single_row_scores_zero() {
        let t = table(&[&[(0, 3), (1, 4)]]);
        assert_eq!(solve(&t).claimed_phc, 0);
    }

    #[test]
    fn single_column_groups_duplicates() {
        let t = table(&[&[(0, 3)], &[(1, 2)], &[(0, 3)], &[(0, 3)], &[(1, 2)]]);
        // value 0: 3 occurrences → 2·9; value 1: 2 occurrences → 1·4.
        assert_eq!(solve(&t).claimed_phc, 18 + 4);
    }

    #[test]
    fn all_unique_scores_zero_fast() {
        let rows: Vec<Vec<(u32, u32)>> = (0..12)
            .map(|r| (0..4).map(|f| (100 * r + f, 2)).collect())
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        // Without singleton pruning this would explore 2^12 row subsets.
        assert_eq!(solve(&t).claimed_phc, 0);
    }

    #[test]
    fn figure_1a_bound_is_achieved() {
        // First field unique, other m−1 fields constant (unit lengths):
        // optimum is (n−1)(m−1).
        let n = 6u32;
        let m = 4u32;
        let rows: Vec<Vec<(u32, u32)>> = (0..n)
            .map(|r| {
                let mut row = vec![(1000 + r, 1)];
                row.extend((1..m).map(|f| (f, 1)));
                row
            })
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        assert_eq!(solve(&t).claimed_phc, u64::from((n - 1) * (m - 1)));
    }

    #[test]
    fn figure_1b_staggered_groups() {
        // 3 fields, x rows per group; group Gi lives in field i and the other
        // cells are unique. Optimal per-row ordering scores 3(x−1).
        let x = 4u32;
        let mut rows: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut next_unique = 1000;
        for field in 0..3u32 {
            for _ in 0..x {
                let row: Vec<(u32, u32)> = (0..3)
                    .map(|f| {
                        if f == field {
                            (field + 1, 1)
                        } else {
                            next_unique += 1;
                            (next_unique, 1)
                        }
                    })
                    .collect();
                rows.push(row);
            }
        }
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        assert_eq!(solve(&t).claimed_phc, u64::from(3 * (x - 1)));
    }

    #[test]
    fn longer_values_win_ties() {
        // Two competing groups; the longer value's group must be prioritized
        // when only one can lead.
        let t = table(&[
            &[(1, 10), (7, 1)],
            &[(1, 10), (8, 1)],
            &[(2, 1), (9, 5)],
            &[(3, 1), (9, 5)],
        ]);
        // Both groups are disjoint row-wise, so both can be captured:
        // 10² + 5² = 125.
        assert_eq!(solve(&t).claimed_phc, 125);
    }

    #[test]
    fn overlapping_groups_choose_best() {
        // Row 1 belongs to both the col0 group (len 2) and the col1 group
        // (len 5); only one can lead its prefix.
        let t = table(&[&[(1, 2), (7, 5)], &[(1, 2), (8, 5)], &[(3, 2), (8, 5)]]);
        // Split on col1 value 8 (rows 1,2): 25. Remaining rows {0} scores 0.
        // Within the group, col0 left: values 1,3 distinct → 0. Alternative
        // split on col0 value 1 (rows 0,1): 4 + sub-table col1 {7,8} → 0.
        assert_eq!(solve(&t).claimed_phc, 25);
    }

    #[test]
    fn budget_zero_times_out() {
        // Needs a table that reaches the recursive case.
        let rows: Vec<Vec<(u32, u32)>> = (0..8)
            .map(|r| vec![(r % 2, 2), (r % 3, 2), (r, 2)])
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let r = Ophr::with_budget(Duration::ZERO).reorder(&t, &FunctionalDeps::empty(3));
        assert!(matches!(r, Err(SolveError::BudgetExceeded { .. })));
    }

    #[test]
    fn deterministic_output() {
        let t = table(&[
            &[(1, 2), (7, 2)],
            &[(1, 2), (7, 2)],
            &[(2, 2), (8, 2)],
            &[(2, 2), (8, 2)],
        ]);
        let a = solve(&t);
        let b = solve(&t);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.claimed_phc, 2 * (4 + 4));
    }

    /// Exhaustively enumerates every row order and per-row field order of a
    /// tiny table and returns the best PHC — the brute-force ground truth.
    fn brute_force(t: &ReorderTable) -> u64 {
        use crate::phc::phc_of_rows;
        fn perms<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
            if items.is_empty() {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for i in 0..items.len() {
                let mut rest = items.to_vec();
                let head = rest.remove(i);
                for mut tail in perms(&rest) {
                    tail.insert(0, head.clone());
                    out.push(tail);
                }
            }
            out
        }
        let n = t.nrows();
        let m = t.ncols();
        let row_perms = perms(&(0..n).collect::<Vec<_>>());
        let field_perms = perms(&(0..m as u32).collect::<Vec<_>>());
        let mut best = 0;
        // For each row order, choose field orders greedily over all
        // combinations via recursive enumeration.
        fn assign(
            t: &ReorderTable,
            order: &[usize],
            field_perms: &[Vec<u32>],
            chosen: &mut Vec<Vec<u32>>,
            best: &mut u64,
        ) {
            if chosen.len() == order.len() {
                let rows: Vec<Vec<(u32, crate::table::Cell)>> = order
                    .iter()
                    .zip(chosen.iter())
                    .map(|(&r, fields)| {
                        fields.iter().map(|&f| (f, t.cell(r, f as usize))).collect()
                    })
                    .collect();
                *best = (*best).max(crate::phc::phc_of_rows(&rows).phc);
                return;
            }
            for fp in field_perms {
                chosen.push(fp.clone());
                assign(t, order, field_perms, chosen, best);
                chosen.pop();
            }
        }
        let _ = phc_of_rows(&[]); // keep import used on all paths
        for order in &row_perms {
            let mut chosen = Vec::new();
            assign(t, order, &field_perms, &mut chosen, &mut best);
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_tables() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..40 {
            let n = rng.random_range(2..=3);
            let m = rng.random_range(1..=3);
            let alphabet = rng.random_range(1..=3u32);
            let rows: Vec<Vec<(u32, u32)>> = (0..n)
                .map(|_| {
                    (0..m)
                        .map(|f| {
                            (
                                f as u32 * 10 + rng.random_range(0..alphabet),
                                rng.random_range(1..=4u32),
                            )
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
            let t = table(&refs);
            // Same (col, value) must imply same len for well-formed tables.
            // Regenerate lens per (col,value) to enforce that:
            let mut fixed = ReorderTable::new(t.column_names().to_vec()).unwrap();
            for r in 0..t.nrows() {
                let row: Vec<Cell> = (0..t.ncols())
                    .map(|cidx| {
                        let v = t.cell(r, cidx).value;
                        Cell::new(v, 1 + v.as_u32() % 4)
                    })
                    .collect();
                fixed.push_row(row).unwrap();
            }
            let s = solve(&fixed);
            let bf = brute_force(&fixed);
            assert_eq!(
                s.claimed_phc, bf,
                "case {case}: OPHR={} brute-force={bf} table={fixed:?}",
                s.claimed_phc
            );
        }
    }
}
