//! Frozen pre-optimization GGR — the differential-testing oracle.
//!
//! [`GgrReference`] is the direct transcription of Algorithm 1 that shipped
//! before the columnar solver core: `HashMap`-based grouping at every
//! recursion level, `Vec::contains` rest-filtering, and row-major cell
//! access. It is retained verbatim (including private copies of the
//! fallback-ordering helpers it used, so later changes to
//! [`crate::order`] cannot silently drift the oracle) for two reasons:
//!
//! 1. **Differential tests** assert that the optimized [`Ggr`](crate::Ggr)
//!    produces byte-identical plans and claimed PHC on random and dataset
//!    tables.
//! 2. **Benchmarks** (`perf_solver`, `cargo bench`) report the speedup of
//!    the columnar core against this implementation.
//!
//! Do not "fix" or optimize this module; its value is being frozen.

use crate::fd::FunctionalDeps;
use crate::ggr::{FallbackOrdering, GgrConfig};
use crate::plan::{ReorderPlan, RowPlan};
use crate::solver::{check_fd_arity, Reorderer, Solution, SolveError};
use crate::table::ReorderTable;
use crate::ValueId;
use std::collections::HashMap;
use std::time::Instant;

/// The frozen greedy solver (Algorithm 1, pre-columnar transcription).
///
/// Accepts the same [`GgrConfig`] as [`Ggr`](crate::Ggr) and must produce
/// the identical plan and claimed score for every configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GgrReference {
    config: GgrConfig,
}

impl GgrReference {
    /// Creates a reference solver with the given configuration.
    pub fn new(config: GgrConfig) -> Self {
        GgrReference { config }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &GgrConfig {
        &self.config
    }
}

impl Reorderer for GgrReference {
    fn name(&self) -> &'static str {
        "ggr-reference"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let ctx = Ctx {
            table,
            fds,
            config: &self.config,
        };
        let rows: Vec<u32> = (0..table.nrows() as u32).collect();
        let cols: Vec<u32> = (0..table.ncols() as u32).collect();
        let (score, ordered) = ctx.ggr(&rows, &cols, 0, 0);
        let plan = ReorderPlan {
            rows: ordered
                .into_iter()
                .map(|(row, fields)| RowPlan::new(row as usize, fields))
                .collect(),
        };
        Ok(Solution {
            plan,
            claimed_phc: score.round() as u64,
            solve_time: start.elapsed(),
        })
    }
}

struct Ctx<'a> {
    table: &'a ReorderTable,
    fds: &'a FunctionalDeps,
    config: &'a GgrConfig,
}

/// The winning group of one greedy step.
struct BestGroup {
    col: u32,
    value: ValueId,
    hitcount: f64,
    rows: Vec<u32>,
    /// `[col] ++ inferred columns present in the view` — the prefix columns.
    prefix_cols: Vec<u32>,
}

impl<'a> Ctx<'a> {
    fn ggr(
        &self,
        rows: &[u32],
        cols: &[u32],
        row_depth: usize,
        col_depth: usize,
    ) -> (f64, Vec<(u32, Vec<u32>)>) {
        if rows.is_empty() {
            return (0.0, Vec::new());
        }
        if rows.len() == 1 {
            return (0.0, vec![(rows[0], cols.to_vec())]);
        }
        if cols.len() == 1 {
            return self.single_column(rows, cols[0]);
        }
        let row_stop = self.config.max_row_depth.is_some_and(|d| row_depth >= d);
        let col_stop = self.config.max_col_depth.is_some_and(|d| col_depth >= d);
        if row_stop || col_stop {
            return self.fallback(rows, cols);
        }

        let best = match self.best_group(rows, cols) {
            Some(b) => b,
            None => return (0.0, rows.iter().map(|&r| (r, cols.to_vec())).collect()),
        };
        if self
            .config
            .min_hitcount
            .is_some_and(|t| (best.hitcount as u64) < t)
        {
            return self.fallback(rows, cols);
        }

        let rest: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|r| !best.rows.contains(r))
            .collect();
        let sub_cols: Vec<u32> = cols
            .iter()
            .copied()
            .filter(|c| !best.prefix_cols.contains(c))
            .collect();

        let (a_score, a_rows) = self.ggr(&rest, cols, row_depth + 1, col_depth);
        let (b_score, b_rows) = if sub_cols.is_empty() {
            (0.0, best.rows.iter().map(|&r| (r, Vec::new())).collect())
        } else {
            self.ggr(&best.rows, &sub_cols, row_depth, col_depth + 1)
        };

        let mut out = Vec::with_capacity(rows.len());
        for (row, fields) in b_rows {
            let mut full = best.prefix_cols.clone();
            full.extend(fields);
            out.push((row, full));
        }
        out.extend(a_rows);
        (a_score + b_score + best.hitcount, out)
    }

    fn best_group(&self, rows: &[u32], cols: &[u32]) -> Option<BestGroup> {
        let mut best: Option<BestGroup> = None;
        for &c in cols {
            let mut by_value: HashMap<ValueId, Vec<u32>> = HashMap::new();
            for &r in rows {
                by_value
                    .entry(self.table.cell(r as usize, c as usize).value)
                    .or_default()
                    .push(r);
            }
            let mut groups: Vec<(ValueId, Vec<u32>)> = by_value
                .into_iter()
                .filter(|(_, members)| members.len() >= 2)
                .collect();
            groups.sort_by_key(|(v, _)| *v);

            let inferred: Vec<u32> = if self.config.use_fds {
                self.fds
                    .inferred(c as usize)
                    .iter()
                    .copied()
                    .filter(|ic| cols.contains(ic))
                    .collect()
            } else {
                Vec::new()
            };

            for (value, members) in groups {
                let mut tot_len = self.table.cell(members[0] as usize, c as usize).sq_len() as f64;
                for &ic in &inferred {
                    let sum: f64 = members
                        .iter()
                        .map(|&r| self.table.cell(r as usize, ic as usize).sq_len() as f64)
                        .sum();
                    tot_len += sum / members.len() as f64;
                }
                let hitcount = tot_len * (members.len() as f64 - 1.0);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        hitcount > b.hitcount
                            || (hitcount == b.hitcount
                                && (members.len() > b.rows.len()
                                    || (members.len() == b.rows.len()
                                        && (c < b.col || (c == b.col && value < b.value)))))
                    }
                };
                if better {
                    let mut prefix_cols = vec![c];
                    prefix_cols.extend(&inferred);
                    best = Some(BestGroup {
                        col: c,
                        value,
                        hitcount,
                        rows: members,
                        prefix_cols,
                    });
                }
            }
        }
        best
    }

    fn single_column(&self, rows: &[u32], col: u32) -> (f64, Vec<(u32, Vec<u32>)>) {
        let mut ordered = rows.to_vec();
        ordered.sort_by_key(|&r| (self.table.cell(r as usize, col as usize).value, r));
        let mut score = 0u64;
        for pair in ordered.windows(2) {
            let a = self.table.cell(pair[0] as usize, col as usize);
            let b = self.table.cell(pair[1] as usize, col as usize);
            if a.value == b.value {
                score += b.sq_len();
            }
        }
        (
            score as f64,
            ordered.into_iter().map(|r| (r, vec![col])).collect(),
        )
    }

    fn fallback(&self, rows: &[u32], cols: &[u32]) -> (f64, Vec<(u32, Vec<u32>)>) {
        if self.config.fallback == FallbackOrdering::Adaptive {
            let ordered = adaptive_prefix_plan_frozen(self.table, rows, cols);
            let score = self.exact_block_score(&ordered);
            return (score as f64, ordered);
        }
        let field_order: Vec<u32> = match self.config.fallback {
            FallbackOrdering::Adaptive => unreachable!("handled above"),
            FallbackOrdering::GreedyPrefix => greedy_prefix_order_frozen(self.table, rows, cols),
            FallbackOrdering::StatFixed => self.stat_order(rows, cols),
            FallbackOrdering::SortedFixed => cols.to_vec(),
            FallbackOrdering::Original => cols.to_vec(),
        };
        let mut ordered = rows.to_vec();
        if self.config.fallback != FallbackOrdering::Original {
            ordered.sort_by(|&a, &b| {
                for &f in &field_order {
                    let va = self.table.cell(a as usize, f as usize).value;
                    let vb = self.table.cell(b as usize, f as usize).value;
                    match va.cmp(&vb) {
                        std::cmp::Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.cmp(&b)
            });
        }
        let plan: Vec<(u32, Vec<u32>)> = ordered
            .into_iter()
            .map(|r| (r, field_order.clone()))
            .collect();
        let score = self.exact_block_score(&plan);
        (score as f64, plan)
    }

    fn exact_block_score(&self, ordered: &[(u32, Vec<u32>)]) -> u64 {
        let mut score = 0u64;
        for pair in ordered.windows(2) {
            let (ra, fa) = (&pair[0].0, &pair[0].1);
            let (rb, fb) = (&pair[1].0, &pair[1].1);
            for (&ca, &cb) in fa.iter().zip(fb.iter()) {
                if ca != cb {
                    break;
                }
                let a = self.table.cell(*ra as usize, ca as usize);
                let b = self.table.cell(*rb as usize, cb as usize);
                if a.value == b.value {
                    score += b.sq_len();
                } else {
                    break;
                }
            }
        }
        score
    }

    fn stat_order(&self, rows: &[u32], cols: &[u32]) -> Vec<u32> {
        let n = rows.len();
        let mut scored: Vec<(f64, usize, u32)> = cols
            .iter()
            .enumerate()
            .map(|(pos, &c)| {
                let mut distinct: HashMap<ValueId, ()> = HashMap::new();
                let mut sum_sq = 0f64;
                for &r in rows {
                    let cell = self.table.cell(r as usize, c as usize);
                    distinct.insert(cell.value, ());
                    sum_sq += cell.sq_len() as f64;
                }
                let avg_sq = if n == 0 { 0.0 } else { sum_sq / n as f64 };
                let dup_rows = (n - distinct.len()) as f64;
                (avg_sq * dup_rows, pos, c)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.into_iter().map(|(_, _, c)| c).collect()
    }
}

/// Frozen copy of the pre-columnar `adaptive_prefix_plan` fallback.
fn adaptive_prefix_plan_frozen(
    table: &ReorderTable,
    rows: &[u32],
    cols: &[u32],
) -> Vec<(u32, Vec<u32>)> {
    let mut out = Vec::with_capacity(rows.len());
    adaptive_rec_frozen(table, rows.to_vec(), cols, &mut out);
    out
}

fn adaptive_rec_frozen(
    table: &ReorderTable,
    mut rows: Vec<u32>,
    cols: &[u32],
    out: &mut Vec<(u32, Vec<u32>)>,
) {
    let flush_flat = |rows: &[u32], cols: &[u32], out: &mut Vec<(u32, Vec<u32>)>| {
        let mut rest = cols.to_vec();
        rest.sort_by_key(|&c| {
            std::cmp::Reverse(
                rows.iter()
                    .map(|&r| table.cell(r as usize, c as usize).sq_len())
                    .sum::<u64>(),
            )
        });
        for &r in rows {
            out.push((r, rest.clone()));
        }
    };
    loop {
        if rows.len() <= 1 || cols.is_empty() {
            flush_flat(&rows, cols, out);
            return;
        }
        let n = rows.len();
        let mut best: Option<(f64, u32)> = None;
        for &c in cols {
            let mut distinct: HashMap<ValueId, ()> = HashMap::with_capacity(n);
            let mut sum_sq = 0f64;
            for &r in &rows {
                let cell = table.cell(r as usize, c as usize);
                distinct.insert(cell.value, ());
                sum_sq += cell.sq_len() as f64;
            }
            let gain = (sum_sq / n as f64) * (n - distinct.len()) as f64;
            if gain > 0.0 && best.is_none_or(|(bg, bc)| gain > bg || (gain == bg && c < bc)) {
                best = Some((gain, c));
            }
        }
        let Some((_, chosen)) = best else {
            flush_flat(&rows, cols, out);
            return;
        };
        let mut groups: HashMap<ValueId, Vec<u32>> = HashMap::new();
        for &r in &rows {
            groups
                .entry(table.cell(r as usize, chosen as usize).value)
                .or_default()
                .push(r);
        }
        let mut parts: Vec<(ValueId, Vec<u32>)> = Vec::new();
        let mut residual: Vec<u32> = Vec::new();
        for (v, members) in groups {
            if members.len() >= 2 {
                parts.push((v, members));
            } else {
                residual.extend(members);
            }
        }
        parts.sort_by_key(|(v, members)| (std::cmp::Reverse(members.len()), *v));
        residual.sort_unstable();
        let sub_cols: Vec<u32> = cols.iter().copied().filter(|&c| c != chosen).collect();
        for (_, members) in parts {
            let mark = out.len();
            adaptive_rec_frozen(table, members, &sub_cols, out);
            for (_, fields) in &mut out[mark..] {
                fields.insert(0, chosen);
            }
        }
        if residual.is_empty() {
            return;
        }
        rows = residual;
    }
}

/// Frozen copy of the pre-columnar `greedy_prefix_order` fallback.
fn greedy_prefix_order_frozen(table: &ReorderTable, rows: &[u32], cols: &[u32]) -> Vec<u32> {
    let n = rows.len();
    let mut order: Vec<u32> = Vec::with_capacity(cols.len());
    let mut remaining: Vec<u32> = cols.to_vec();
    let mut groups: Vec<u32> = vec![0; n];
    let mut n_groups = 1usize;

    while !remaining.is_empty() && n_groups < n {
        let mut best: Option<(f64, usize)> = None;
        for (i, &c) in remaining.iter().enumerate() {
            let mut distinct: HashMap<(u32, ValueId), ()> = HashMap::with_capacity(n);
            let mut sum_sq = 0f64;
            for (g, &r) in groups.iter().zip(rows) {
                let cell = table.cell(r as usize, c as usize);
                distinct.insert((*g, cell.value), ());
                sum_sq += cell.sq_len() as f64;
            }
            let gain = (sum_sq / n as f64) * (n - distinct.len()) as f64;
            let better = match best {
                None => true,
                Some((bg, bi)) => gain > bg || (gain == bg && remaining[bi] > c),
            };
            if better {
                best = Some((gain, i));
            }
        }
        let (_, idx) = best.expect("remaining is non-empty");
        let chosen = remaining.remove(idx);
        let mut key_map: HashMap<(u32, ValueId), u32> = HashMap::with_capacity(n_groups * 2);
        for (g, &r) in groups.iter_mut().zip(rows) {
            let cell = table.cell(r as usize, chosen as usize);
            let next = key_map.len() as u32;
            let id = *key_map.entry((*g, cell.value)).or_insert(next);
            *g = id;
        }
        n_groups = key_map.len();
        order.push(chosen);
    }

    remaining.sort_by(|&a, &b| {
        let la: u64 = rows
            .iter()
            .map(|&r| table.cell(r as usize, a as usize).sq_len())
            .sum();
        let lb: u64 = rows
            .iter()
            .map(|&r| table.cell(r as usize, b as usize).sq_len())
            .sum();
        lb.cmp(&la).then(a.cmp(&b))
    });
    order.extend(remaining);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phc::phc_of_plan;
    use crate::table::Cell;

    fn table(rows: &[&[(u32, u32)]]) -> ReorderTable {
        let m = rows[0].len();
        let cols = (0..m).map(|i| format!("c{i}")).collect();
        let mut t = ReorderTable::new(cols).unwrap();
        for row in rows {
            t.push_row(
                row.iter()
                    .map(|&(id, len)| Cell::new(ValueId::from_raw(id), len))
                    .collect(),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn reference_is_a_valid_solver() {
        let t = table(&[
            &[(1, 3), (10, 7), (20, 2)],
            &[(1, 3), (11, 7), (21, 2)],
            &[(2, 3), (11, 7), (20, 2)],
            &[(2, 3), (12, 7), (22, 2)],
        ]);
        let s = GgrReference::default()
            .reorder(&t, &FunctionalDeps::empty(3))
            .unwrap();
        s.plan.validate(&t).unwrap();
        assert!(phc_of_plan(&t, &s.plan).phc >= s.claimed_phc);
    }

    #[test]
    fn name_is_distinct() {
        assert_eq!(GgrReference::default().name(), "ggr-reference");
    }
}
