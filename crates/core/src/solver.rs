//! The common solver interface.

use crate::fd::FunctionalDeps;
use crate::plan::ReorderPlan;
use crate::table::ReorderTable;
use std::fmt;
use std::time::Duration;

/// A solver's output: the schedule plus its claimed objective value and the
/// time spent solving (paper Table 5 reports solver time separately from
/// query time).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The request schedule.
    pub plan: ReorderPlan,
    /// The PHC the solver believes its plan achieves. Exact for OPHR and for
    /// GGR under exact functional dependencies; an estimate otherwise.
    /// Ground truth is [`phc_of_plan`](crate::phc_of_plan).
    pub claimed_phc: u64,
    /// Wall-clock solve time.
    pub solve_time: Duration,
}

/// Why a solver could not produce a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The configured time budget was exhausted (OPHR on large tables; the
    /// paper terminates such runs after 2 hours, Appendix D.1).
    BudgetExceeded {
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// The functional dependencies do not match the table's column count.
    FdArityMismatch {
        /// Columns in the table.
        table_cols: usize,
        /// Columns the FDs describe.
        fd_cols: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::BudgetExceeded { budget } => {
                write!(f, "solver exceeded its time budget of {budget:?}")
            }
            SolveError::FdArityMismatch {
                table_cols,
                fd_cols,
            } => write!(
                f,
                "functional dependencies cover {fd_cols} columns but table has {table_cols}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// A request-reordering algorithm.
///
/// Implementations must return plans that pass
/// [`ReorderPlan::validate`] — schedules are permutations and never alter
/// query semantics.
pub trait Reorderer {
    /// Short stable name for reports (e.g. `"ggr"`, `"original"`).
    fn name(&self) -> &'static str;

    /// Computes a schedule for `table` under the given dependencies.
    ///
    /// # Errors
    ///
    /// [`SolveError::BudgetExceeded`] for budgeted exact solvers;
    /// [`SolveError::FdArityMismatch`] if `fds` does not match the table.
    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError>;
}

/// Validates FD/table arity, shared by solver implementations.
pub(crate) fn check_fd_arity(table: &ReorderTable, fds: &FunctionalDeps) -> Result<(), SolveError> {
    if table.ncols() != fds.ncols() {
        return Err(SolveError::FdArityMismatch {
            table_cols: table.ncols(),
            fd_cols: fds.ncols(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = SolveError::BudgetExceeded {
            budget: Duration::from_secs(1),
        };
        assert!(e.to_string().contains("budget"));
        let e = SolveError::FdArityMismatch {
            table_cols: 3,
            fd_cols: 2,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn arity_check() {
        let t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        assert!(check_fd_arity(&t, &FunctionalDeps::empty(2)).is_ok());
        assert!(check_fd_arity(&t, &FunctionalDeps::empty(3)).is_err());
    }
}
