//! Functional dependencies between table columns (paper §4.2.1).
//!
//! The paper uses *bidirectional* FDs: columns `X ↔ Y` such that equal values
//! in `X` imply equal values in `Y` and vice versa (e.g. `movietitle ↔
//! rottentomatoeslink`). GGR exploits them two ways: once a value in column
//! `c` is chosen for a row's prefix, every column functionally equivalent to
//! `c` is placed directly after it (guaranteed hits within the group), and
//! those columns are removed from further recursion, shrinking the search
//! space.
//!
//! FDs are represented as equivalence groups over column indices (a
//! union-find closure of the pairwise relation). [`FunctionalDeps::discover`]
//! finds exact bidirectional FDs from data, mirroring what a database would
//! read off primary/foreign key metadata.

use crate::table::ReorderTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A set of bidirectional functional-dependency groups over columns.
///
/// # Examples
///
/// ```
/// use llmqo_core::FunctionalDeps;
/// // Columns 0 and 2 determine each other; column 1 is independent.
/// let fds = FunctionalDeps::from_groups(3, vec![vec![0, 2]]).unwrap();
/// assert_eq!(fds.inferred(0), &[2]);
/// assert_eq!(fds.inferred(2), &[0]);
/// assert!(fds.inferred(1).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDeps {
    ncols: usize,
    /// `inferred[c]` lists the other columns in `c`'s equivalence group,
    /// in ascending column order.
    inferred: Vec<Vec<u32>>,
}

impl FunctionalDeps {
    /// No dependencies among `ncols` columns.
    pub fn empty(ncols: usize) -> Self {
        FunctionalDeps {
            ncols,
            inferred: vec![Vec::new(); ncols],
        }
    }

    /// Builds dependencies from explicit equivalence groups (the form used in
    /// the paper's Appendix B, e.g. `[beer/beerId, beer/name]`).
    ///
    /// Overlapping groups are merged transitively.
    ///
    /// # Errors
    ///
    /// Returns the offending index if any group references a column `≥ ncols`.
    pub fn from_groups(ncols: usize, groups: Vec<Vec<u32>>) -> Result<Self, u32> {
        let mut parent: Vec<u32> = (0..ncols as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for group in &groups {
            for &c in group {
                if c as usize >= ncols {
                    return Err(c);
                }
            }
            for w in group.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for c in 0..ncols as u32 {
            members.entry(find(&mut parent, c)).or_default().push(c);
        }
        let mut inferred = vec![Vec::new(); ncols];
        for group in members.values() {
            for &c in group {
                inferred[c as usize] = group.iter().copied().filter(|&o| o != c).collect();
                inferred[c as usize].sort_unstable();
            }
        }
        Ok(FunctionalDeps { ncols, inferred })
    }

    /// Discovers exact bidirectional FDs from table data.
    ///
    /// Columns `a ↔ b` iff the observed value mapping between them is a
    /// bijection. This is `O(m² · n)` and intended for offline use, standing
    /// in for the schema metadata (primary/foreign keys) that real databases
    /// already maintain.
    pub fn discover(table: &ReorderTable) -> Self {
        let m = table.ncols();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for a in 0..m {
            for b in (a + 1)..m {
                if bidirectional(table, a, b) {
                    groups.push(vec![a as u32, b as u32]);
                }
            }
        }
        Self::from_groups(m, groups).expect("discovered indices are in range")
    }

    /// Number of columns these dependencies cover.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Columns functionally equivalent to `c` (excluding `c`), ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ ncols`.
    pub fn inferred(&self, c: usize) -> &[u32] {
        &self.inferred[c]
    }

    /// Whether any dependency exists.
    pub fn is_trivial(&self) -> bool {
        self.inferred.iter().all(Vec::is_empty)
    }

    /// The distinct equivalence groups with more than one member.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut seen = vec![false; self.ncols];
        let mut out = Vec::new();
        for c in 0..self.ncols {
            if seen[c] || self.inferred[c].is_empty() {
                continue;
            }
            let mut group = vec![c as u32];
            group.extend_from_slice(&self.inferred[c]);
            group.sort_unstable();
            for &g in &group {
                seen[g as usize] = true;
            }
            out.push(group);
        }
        out
    }
}

/// Checks whether columns `a` and `b` of `table` exactly determine each other.
fn bidirectional(table: &ReorderTable, a: usize, b: usize) -> bool {
    let mut fwd = HashMap::new();
    let mut bwd = HashMap::new();
    for r in 0..table.nrows() {
        let va = table.cell(r, a).value;
        let vb = table.cell(r, b).value;
        if *fwd.entry(va).or_insert(vb) != vb || *bwd.entry(vb).or_insert(va) != va {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;
    use crate::ValueId;

    fn c(id: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), 1)
    }

    #[test]
    fn empty_has_no_inferred() {
        let fds = FunctionalDeps::empty(3);
        assert!(fds.is_trivial());
        assert!(fds.groups().is_empty());
        for col in 0..3 {
            assert!(fds.inferred(col).is_empty());
        }
    }

    #[test]
    fn groups_are_symmetric() {
        let fds = FunctionalDeps::from_groups(4, vec![vec![1, 3]]).unwrap();
        assert_eq!(fds.inferred(1), &[3]);
        assert_eq!(fds.inferred(3), &[1]);
        assert!(!fds.is_trivial());
        assert_eq!(fds.groups(), vec![vec![1, 3]]);
    }

    #[test]
    fn overlapping_groups_merge() {
        let fds = FunctionalDeps::from_groups(4, vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert_eq!(fds.inferred(0), &[1, 2]);
        assert_eq!(fds.inferred(1), &[0, 2]);
        assert_eq!(fds.inferred(2), &[0, 1]);
        assert_eq!(fds.groups(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn out_of_range_group_rejected() {
        assert_eq!(FunctionalDeps::from_groups(2, vec![vec![0, 5]]), Err(5));
    }

    #[test]
    fn discover_finds_exact_bijection() {
        // col0 ↔ col1 (ids paired), col2 independent.
        let mut t = ReorderTable::new(vec!["k".into(), "name".into(), "x".into()]).unwrap();
        t.push_row(vec![c(0), c(10), c(100)]).unwrap();
        t.push_row(vec![c(1), c(11), c(100)]).unwrap();
        t.push_row(vec![c(0), c(10), c(101)]).unwrap();
        let fds = FunctionalDeps::discover(&t);
        assert_eq!(fds.inferred(0), &[1]);
        assert_eq!(fds.inferred(1), &[0]);
        assert!(fds.inferred(2).is_empty());
    }

    #[test]
    fn discover_rejects_one_directional() {
        // col1 determines col0 but not vice versa (two names per key).
        let mut t = ReorderTable::new(vec!["k".into(), "name".into()]).unwrap();
        t.push_row(vec![c(0), c(10)]).unwrap();
        t.push_row(vec![c(0), c(11)]).unwrap();
        let fds = FunctionalDeps::discover(&t);
        assert!(fds.is_trivial());
    }

    #[test]
    fn discover_on_empty_table_links_everything() {
        // Vacuously true bijections; harmless because GGR only uses FDs when
        // groups exist.
        let t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        let fds = FunctionalDeps::discover(&t);
        assert_eq!(fds.inferred(0), &[1]);
    }

    #[test]
    fn single_column_tables() {
        let fds = FunctionalDeps::empty(1);
        assert!(fds.inferred(0).is_empty());
    }
}
