//! Partition-parallel solving.
//!
//! The paper runs inside Spark (§5), where the input table arrives in
//! partitions and each partition's requests are dispatched together.
//! [`Partitioned`] mirrors that deployment: it splits the table into
//! contiguous row chunks, solves each chunk **in parallel** with an inner
//! solver on its own thread, and concatenates the per-chunk schedules.
//!
//! Partitioning trades a little PHC (groups spanning a partition boundary
//! are split, costing one extra cold row per boundary per group) for
//! near-linear solver scale-out and bounded per-task memory — the same
//! trade Spark users make. The wrapper preserves every solver invariant:
//! the concatenation of per-chunk permutations is a permutation, and the
//! claimed score is the sum of per-chunk claims (cross-boundary accidental
//! hits can only add to it).
//!
//! Execution uses a bounded **worker pool** (one scoped thread per
//! available core, not one per chunk): workers claim chunks from a shared
//! counter, so a long-lived worker solves many chunks in sequence and the
//! thread-local [`Scratch`](crate::scratch) recycling amortizes the
//! O(rows·cols) index-arena allocations across every chunk it touches.
//! Results are written back by chunk index, keeping output deterministic
//! regardless of scheduling.

use crate::fd::FunctionalDeps;
use crate::plan::{ReorderPlan, RowPlan};
use crate::solver::{check_fd_arity, Reorderer, Solution, SolveError};
use crate::table::ReorderTable;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Wraps any [`Reorderer`], solving contiguous row partitions in parallel.
///
/// # Examples
///
/// ```
/// use llmqo_core::{FunctionalDeps, Ggr, Partitioned, Reorderer, TableBuilder};
/// let mut b = TableBuilder::new(vec!["k".into()]);
/// for i in 0..100 {
///     b.push_row(&[if i % 2 == 0 { "a" } else { "b" }]);
/// }
/// let (t, _) = b.finish();
/// let solver = Partitioned::new(Ggr::default(), 32);
/// let s = solver.reorder(&t, &FunctionalDeps::empty(1)).unwrap();
/// assert!(s.plan.validate(&t).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Partitioned<R> {
    inner: R,
    partition_rows: usize,
}

impl<R: Reorderer + Sync> Partitioned<R> {
    /// Creates a partitioned solver with the given rows per partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition_rows` is zero.
    pub fn new(inner: R, partition_rows: usize) -> Self {
        assert!(partition_rows > 0, "partitions must be non-empty");
        Partitioned {
            inner,
            partition_rows,
        }
    }

    /// Rows per partition.
    pub fn partition_rows(&self) -> usize {
        self.partition_rows
    }
}

impl<R: Reorderer + Sync> Reorderer for Partitioned<R> {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let n = table.nrows();
        let chunk_bounds: Vec<(usize, usize)> = (0..n)
            .step_by(self.partition_rows)
            .map(|lo| (lo, (lo + self.partition_rows).min(n)))
            .collect();

        // A bounded worker pool claims chunks from a shared counter: each
        // worker's thread stays alive across the many chunks it solves, so
        // the thread-local scratch arena is built once per worker and
        // recycled chunk after chunk. Results are scattered back by chunk
        // index, so the concatenation is deterministic however the workers
        // interleave.
        let nchunks = chunk_bounds.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(nchunks)
            .max(1);
        let next_chunk = AtomicUsize::new(0);
        let mut partials: Vec<Option<Result<Solution, SolveError>>> =
            (0..nchunks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let inner = &self.inner;
                    let next_chunk = &next_chunk;
                    let chunk_bounds = &chunk_bounds;
                    scope.spawn(move || {
                        let mut solved: Vec<(usize, Result<Solution, SolveError>)> = Vec::new();
                        let mut row_ids: Vec<usize> = Vec::new();
                        loop {
                            let i = next_chunk.fetch_add(1, Ordering::Relaxed);
                            let Some(&(lo, hi)) = chunk_bounds.get(i) else {
                                break;
                            };
                            row_ids.clear();
                            row_ids.extend(lo..hi);
                            let chunk = table.select_rows(&row_ids);
                            solved.push((i, inner.reorder(&chunk, fds)));
                        }
                        solved
                    })
                })
                .collect();
            for h in handles {
                for (i, partial) in h.join().expect("partition solver panicked") {
                    partials[i] = Some(partial);
                }
            }
        });

        let mut rows = Vec::with_capacity(n);
        let mut claimed_phc = 0u64;
        for ((lo, _), partial) in chunk_bounds.into_iter().zip(partials) {
            let solution = partial.expect("every chunk index was claimed exactly once")?;
            claimed_phc += solution.claimed_phc;
            rows.extend(
                solution
                    .plan
                    .rows
                    .into_iter()
                    .map(|rp| RowPlan::new(rp.row + lo, rp.fields)),
            );
        }
        Ok(Solution {
            plan: ReorderPlan { rows },
            claimed_phc,
            solve_time: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggr::Ggr;
    use crate::phc::phc_of_plan;
    use crate::table::Cell;
    use crate::ValueId;

    fn join_table(nrows: usize, group: usize) -> ReorderTable {
        let mut t = ReorderTable::new(vec!["id".into(), "meta".into()]).unwrap();
        for r in 0..nrows {
            t.push_row(vec![
                Cell::new(ValueId::from_raw(10_000 + r as u32), 2),
                Cell::new(ValueId::from_raw((r / group) as u32), 20),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn partitioned_plans_are_valid_permutations() {
        let t = join_table(97, 5); // deliberately not a multiple of the chunk
        let fds = FunctionalDeps::empty(2);
        for chunk in [1usize, 7, 32, 97, 500] {
            let s = Partitioned::new(Ggr::default(), chunk)
                .reorder(&t, &fds)
                .unwrap();
            assert!(s.plan.validate(&t).is_ok(), "chunk {chunk}");
        }
    }

    #[test]
    fn single_partition_matches_inner_solver() {
        let t = join_table(60, 6);
        let fds = FunctionalDeps::empty(2);
        let inner = Ggr::default().reorder(&t, &fds).unwrap();
        let outer = Partitioned::new(Ggr::default(), 1000)
            .reorder(&t, &fds)
            .unwrap();
        assert_eq!(inner.plan, outer.plan);
        assert_eq!(inner.claimed_phc, outer.claimed_phc);
    }

    #[test]
    fn partitioning_costs_bounded_phc() {
        // Groups of 6 rows; partitions of 30 cut at most one group per
        // boundary: the loss is ≤ boundaries × max cell contribution.
        let t = join_table(180, 6);
        let fds = FunctionalDeps::empty(2);
        let whole = phc_of_plan(&t, &Ggr::default().reorder(&t, &fds).unwrap().plan).phc;
        let split = phc_of_plan(
            &t,
            &Partitioned::new(Ggr::default(), 30)
                .reorder(&t, &fds)
                .unwrap()
                .plan,
        )
        .phc;
        assert!(split <= whole);
        let boundaries = 180 / 30 - 1;
        let max_loss = (boundaries as u64 + 1) * 20 * 20;
        assert!(
            whole - split <= max_loss,
            "lost {} > bound {max_loss}",
            whole - split
        );
    }

    #[test]
    fn claimed_phc_is_a_lower_bound() {
        let t = join_table(90, 9);
        let fds = FunctionalDeps::empty(2);
        let s = Partitioned::new(Ggr::default(), 20)
            .reorder(&t, &fds)
            .unwrap();
        // Cross-boundary accidental matches only add hits.
        assert!(phc_of_plan(&t, &s.plan).phc >= s.claimed_phc);
    }

    #[test]
    fn deterministic_across_runs() {
        let t = join_table(64, 4);
        let fds = FunctionalDeps::empty(2);
        let a = Partitioned::new(Ggr::default(), 16)
            .reorder(&t, &fds)
            .unwrap();
        let b = Partitioned::new(Ggr::default(), 16)
            .reorder(&t, &fds)
            .unwrap();
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn propagates_inner_errors() {
        use crate::ophr::Ophr;
        // Zero budget on a table with group structure: some partition fails.
        let t = join_table(40, 2);
        let fds = FunctionalDeps::empty(2);
        let r =
            Partitioned::new(Ophr::with_budget(std::time::Duration::ZERO), 20).reorder(&t, &fds);
        assert!(matches!(r, Err(SolveError::BudgetExceeded { .. })));
    }

    #[test]
    #[should_panic(expected = "partitions must be non-empty")]
    fn zero_partition_rows_panics() {
        let _ = Partitioned::new(Ggr::default(), 0);
    }

    #[test]
    fn empty_table() {
        let t = ReorderTable::new(vec!["a".into()]).unwrap();
        let s = Partitioned::new(Ggr::default(), 8)
            .reorder(&t, &FunctionalDeps::empty(1))
            .unwrap();
        assert!(s.plan.is_empty());
    }
}
