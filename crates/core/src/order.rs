//! Data-aware fixed field ordering by greedy distinct-prefix counting.
//!
//! §4.2.2 of the paper falls back to a statistics-chosen *fixed* field order
//! when GGR stops recursing, scoring each column by `avg(len)²` and its
//! duplicate count. That score ignores a crucial interaction: once several
//! fields lead the prompt, a further field only extends shared prefixes for
//! rows that already agree on *all* leading fields — the number of distinct
//! prefixes grows multiplicatively, and a long-but-high-cardinality column
//! placed early (say, `artistname` with thousands of values) kills sharing
//! for every column after it.
//!
//! [`greedy_prefix_order`] fixes this with the statistics databases actually
//! maintain plus one exact pass per candidate: it builds the order
//! greedily, at each step picking the column maximizing
//! `avg(len²) · (n − D)` where `D` is the **exact** count of distinct
//! (prefix-so-far, value) combinations. Wide tables with skewed categorical
//! and flag columns (PDMX-like) benefit enormously: low-cardinality columns
//! are packed first, and per-row-unique columns fall to the end, where they
//! can no longer break anyone's prefix.

use crate::scratch::{DeadCols, Scratch};
use crate::table::ReorderTable;
use crate::ValueId;

/// Computes a fixed field order for the subtable (`rows` × `cols`) that
/// greedily maximizes the expected PHC of lexicographically sorted rows.
///
/// Returns a permutation of `cols`. Complexity `O(m² · n)`; distinct
/// `(prefix-group, value)` combinations are counted with a reusable
/// open-addressing slot map over packed 64-bit keys instead of a fresh
/// `HashMap` per candidate. Stops refining early once every prefix is unique
/// (remaining columns are appended by descending squared length, longest
/// first, since they can only ever match inside already-identical prefixes).
pub fn greedy_prefix_order(table: &ReorderTable, rows: &[u32], cols: &[u32]) -> Vec<u32> {
    // No dense index needed: the greedy pass groups by packed
    // (prefix-group, value) pairs, which only the slot map serves.
    let mut scratch = Scratch::default();
    greedy_prefix_order_with(table, rows, cols, &mut scratch)
}

/// [`greedy_prefix_order`] with caller-provided scratch (solver hot path).
pub(crate) fn greedy_prefix_order_with(
    table: &ReorderTable,
    rows: &[u32],
    cols: &[u32],
    s: &mut Scratch,
) -> Vec<u32> {
    let n = rows.len();
    let mut order: Vec<u32> = Vec::with_capacity(cols.len());
    let mut remaining: Vec<u32> = cols.to_vec();
    // Group id of each row under the prefix chosen so far.
    let mut groups = s.pool.take();
    groups.resize(n, 0);
    let mut n_groups = 1usize;

    // (old group, value) packed as one 64-bit slot-map key.
    let pair_key = |g: u32, v: ValueId| (u64::from(g) << 32) | u64::from(v.as_u32());

    while !remaining.is_empty() && n_groups < n {
        let mut best: Option<(f64, usize)> = None;
        for (i, &c) in remaining.iter().enumerate() {
            let values = table.col_values(c as usize);
            let sq_lens = table.col_sq_lens(c as usize);
            s.map.begin(n);
            let mut sum_sq = 0f64;
            for (g, &r) in groups.iter().zip(rows) {
                s.map.insert(pair_key(*g, values[r as usize]));
                sum_sq += sq_lens[r as usize] as f64;
            }
            let gain = (sum_sq / n as f64) * (n - s.map.len() as usize) as f64;
            let better = match best {
                None => true,
                Some((bg, bi)) => gain > bg || (gain == bg && remaining[bi] > c),
            };
            if better {
                best = Some((gain, i));
            }
        }
        let (_, idx) = best.expect("remaining is non-empty");
        let chosen = remaining.remove(idx);
        // Re-key groups by (old group, value in chosen column): the slot
        // map's dense first-seen slots are exactly the fresh group ids.
        let values = table.col_values(chosen as usize);
        s.map.begin(n);
        for (g, &r) in groups.iter_mut().zip(rows) {
            let (slot, _) = s.map.insert(pair_key(*g, values[r as usize]));
            *g = slot;
        }
        n_groups = s.map.len() as usize;
        order.push(chosen);
    }
    s.pool.put(groups);

    // Every prefix is unique (or columns ran out): order the rest longest
    // first — matches can only occur inside identical prefixes anyway.
    let mut rest_scored: Vec<(u64, u32)> = remaining
        .iter()
        .map(|&c| {
            let sq_lens = table.col_sq_lens(c as usize);
            (rows.iter().map(|&r| sq_lens[r as usize]).sum(), c)
        })
        .collect();
    rest_scored.sort_by(|&(la, a), &(lb, b)| lb.cmp(&la).then(a.cmp(&b)));
    order.extend(rest_scored.into_iter().map(|(_, c)| c));
    order
}

/// Recursive adaptive ordering: like [`greedy_prefix_order`] but each value
/// group chooses its **own** next field, producing genuinely per-row field
/// orders (the paper's Fig. 1b insight, applied divisively).
///
/// A single global sort can only share `~log(n)` "bits" of prefix before
/// every row's prefix is unique; recursive partitioning sidesteps that
/// budget because sibling groups spend their entropy on different fields.
/// At each step the field with the highest duplicate mass
/// (`avg(len²) · (n − distinct)`) is chosen; its value groups of two or more
/// rows are scheduled as contiguous blocks led by that field and recurse
/// without it, while rows whose value was unique flow to a residual branch
/// that keeps **all** fields available — so groups hiding in other fields
/// (Fig. 1b's staggered structure) are still found.
///
/// Returns the scheduled rows with a full field permutation per row.
pub fn adaptive_prefix_plan(
    table: &ReorderTable,
    rows: &[u32],
    cols: &[u32],
) -> Vec<(u32, Vec<u32>)> {
    // View-scoped index: a small view of a huge table pays remap work
    // proportional to the view, not the table.
    let mut scratch = Scratch::for_view(table, rows, cols);
    adaptive_prefix_plan_with(table, rows, cols, &mut scratch)
}

/// [`adaptive_prefix_plan`] with caller-provided scratch (GGR's default
/// fall-back runs here, so this is solver hot path on stopped subtables).
pub(crate) fn adaptive_prefix_plan_with(
    table: &ReorderTable,
    rows: &[u32],
    cols: &[u32],
    s: &mut Scratch,
) -> Vec<(u32, Vec<u32>)> {
    adaptive_prefix_plan_dead(table, rows, cols, s, DeadCols::default())
}

/// [`adaptive_prefix_plan_with`] seeded with columns the caller already
/// knows to be group-free on this path (GGR's recursion shares its pruning
/// mask with the fall-back it stops into).
pub(crate) fn adaptive_prefix_plan_dead(
    table: &ReorderTable,
    rows: &[u32],
    cols: &[u32],
    s: &mut Scratch,
    dead: DeadCols,
) -> Vec<(u32, Vec<u32>)> {
    let mut out = Vec::with_capacity(rows.len());
    let mut rows_buf = s.pool.take();
    rows_buf.extend_from_slice(rows);
    adaptive_rec(table, rows_buf, cols, s, &mut out, dead);
    out
}

/// Emits `rows` with `cols` ordered longest (total squared length) first —
/// no sharing is possible, so columns can only match inside prefixes that
/// are already identical. Emitted field lists are sized for the full column
/// count so ancestor prefix-inserts never reallocate.
fn flush_flat(table: &ReorderTable, rows: &[u32], cols: &[u32], out: &mut Vec<(u32, Vec<u32>)>) {
    let mut rest = cols.to_vec();
    rest.sort_by_key(|&c| {
        let sq_lens = table.col_sq_lens(c as usize);
        std::cmp::Reverse(rows.iter().map(|&r| sq_lens[r as usize]).sum::<u64>())
    });
    for &r in rows {
        let mut fields = Vec::with_capacity(table.ncols());
        fields.extend_from_slice(&rest);
        out.push((r, fields));
    }
}

fn adaptive_rec(
    table: &ReorderTable,
    mut rows: Vec<u32>,
    cols: &[u32],
    s: &mut Scratch,
    out: &mut Vec<(u32, Vec<u32>)>,
    mut dead: DeadCols,
) {
    // The residual branch iterates rather than recursing, so schedule depth
    // is bounded by the column count, not the row count.
    loop {
        if rows.len() <= 1 || cols.is_empty() {
            flush_flat(table, &rows, cols, out);
            s.pool.put(rows);
            return;
        }
        let n = rows.len();
        let mut best: Option<(f64, u32)> = None;
        for &c in cols {
            if dead.is_dead(c) {
                continue;
            }
            let (distinct, sum_sq) =
                s.distinct_and_sum_sq(c as usize, table.col_sq_lens(c as usize), &rows);
            if distinct == n {
                // No duplicated value in this view ⇒ none in any sub-view;
                // the gain is 0 here and forever, so stop scanning it.
                dead.kill(c);
                continue;
            }
            let gain = (sum_sq / n as f64) * (n - distinct) as f64;
            if gain > 0.0 && best.is_none_or(|(bg, bc)| gain > bg || (gain == bg && c < bc)) {
                best = Some((gain, c));
            }
        }
        let Some((_, chosen)) = best else {
            flush_flat(table, &rows, cols, out);
            s.pool.put(rows);
            return;
        };
        // Partition by the chosen field's value: multi-member groups become
        // contiguous blocks, singletons flow to the residual branch.
        let n_groups = s.group_dense(chosen as usize, table.col_sq_lens(chosen as usize), &rows);
        let mut parts: Vec<(ValueId, Vec<u32>)> = Vec::with_capacity(n_groups);
        let mut residual = s.pool.take();
        // dense id → index into `parts` (u32::MAX for singleton groups).
        let mut part_of = s.pool.take();
        part_of.clear();
        part_of.resize(
            s.touched.iter().map(|&d| d as usize + 1).max().unwrap_or(0),
            u32::MAX,
        );
        for (k, &r) in rows.iter().enumerate() {
            let d = s.row_dense[k] as usize;
            if s.counts[d] >= 2 {
                if part_of[d] == u32::MAX {
                    part_of[d] = parts.len() as u32;
                    parts.push((s.value_of(chosen as usize, d as u32), s.pool.take()));
                }
                parts[part_of[d] as usize].1.push(r);
            } else {
                residual.push(r);
            }
        }
        s.pool.put(part_of);
        parts.sort_by_key(|(v, members)| (std::cmp::Reverse(members.len()), *v));
        residual.sort_unstable();
        let mut sub_cols = s.pool.take();
        sub_cols.extend(cols.iter().copied().filter(|&c| c != chosen));
        s.pool.put(rows);
        for (_, members) in parts {
            let mark = out.len();
            adaptive_rec(table, members, &sub_cols, s, out, dead);
            // Lead every row of this block with the chosen field.
            for (_, fields) in &mut out[mark..] {
                fields.insert(0, chosen);
            }
        }
        if residual.is_empty() {
            s.pool.put(residual);
            s.pool.put(sub_cols);
            return;
        }
        rows = residual;
        s.pool.put(sub_cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn c(id: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), len)
    }

    fn table(rows: &[&[(u32, u32)]]) -> ReorderTable {
        let m = rows[0].len();
        let cols = (0..m).map(|i| format!("c{i}")).collect();
        let mut t = ReorderTable::new(cols).unwrap();
        for row in rows {
            t.push_row(row.iter().map(|&(id, len)| c(id, len)).collect())
                .unwrap();
        }
        t
    }

    #[test]
    fn output_is_a_permutation() {
        let t = table(&[
            &[(0, 1), (10, 2), (20, 3)],
            &[(1, 1), (10, 2), (21, 3)],
            &[(0, 1), (11, 2), (20, 3)],
        ]);
        let order = greedy_prefix_order(&t, &[0, 1, 2], &[0, 1, 2]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn long_duplicated_column_leads() {
        // col1: one long value everywhere; col0: unique short ids.
        let t = table(&[&[(0, 2), (9, 40)], &[(1, 2), (9, 40)], &[(2, 2), (9, 40)]]);
        let order = greedy_prefix_order(&t, &[0, 1, 2], &[0, 1]);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn high_cardinality_long_column_defers_to_low_cardinality_flags() {
        // col0: per-row-unique, length 9 (classic trap: big total mass, zero
        // sharing). col1, col2: binary flags, length 4.
        let rows: Vec<Vec<(u32, u32)>> = (0..16)
            .map(|r| vec![(100 + r, 9), (r % 2, 4), (1000 + (r / 2) % 2, 4)])
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let all: Vec<u32> = (0..16).collect();
        let order = greedy_prefix_order(&t, &all, &[0, 1, 2]);
        assert_eq!(order[2], 0, "unique column must come last: {order:?}");
    }

    #[test]
    fn prefix_die_off_is_respected() {
        // colA: card 2, len 3. colB: card 8 (unique per pair), len 10.
        // Naive mass ordering puts B first (100·(n−8) > 9·(n−2) for n=8? —
        // B has no duplicates at all here, so gain_B = 0 and A must lead.
        let rows: Vec<Vec<(u32, u32)>> = (0..8).map(|r| vec![(r % 2, 3), (50 + r, 10)]).collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let all: Vec<u32> = (0..8).collect();
        let order = greedy_prefix_order(&t, &all, &[0, 1]);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn works_on_row_and_column_subsets() {
        let t = table(&[&[(0, 1), (10, 5)], &[(1, 1), (10, 5)], &[(2, 1), (11, 5)]]);
        let order = greedy_prefix_order(&t, &[0, 1], &[1]);
        assert_eq!(order, vec![1]);
        let order = greedy_prefix_order(&t, &[], &[0, 1]);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn deterministic() {
        let rows: Vec<Vec<(u32, u32)>> = (0..10)
            .map(|r| vec![(r % 3, 2), (10 + r % 2, 2), (100 + r, 2)])
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let all: Vec<u32> = (0..10).collect();
        let a = greedy_prefix_order(&t, &all, &[0, 1, 2]);
        let b = greedy_prefix_order(&t, &all, &[0, 1, 2]);
        assert_eq!(a, b);
    }
}
