//! The prefix hit count objective (paper Eq. 1–2).
//!
//! For a scheduled list of rows `L`, row `r`'s hit is the sum of **squared**
//! token lengths of its leading cells that exactly match row `r−1`'s leading
//! cells, stopping at the first mismatch. `PHC(L)` sums hits over all rows.
//! Squared lengths model the quadratic cost of attention over a prompt
//! prefix; the *linear* sum of matched tokens is also reported because that
//! is what serving engines expose as the prefix hit **rate** (paper Table 2).
//!
//! A cell matches only if both its **column and value** are identical — the
//! serialized fragment includes the field name, so equal values in different
//! fields do not produce equal tokens.

use crate::plan::ReorderPlan;
use crate::table::{Cell, ReorderTable};
use serde::{Deserialize, Serialize};

/// A materialized scheduled row: `(column index, cell)` pairs in prompt order.
pub type OrderedRow = Vec<(u32, Cell)>;

/// Result of evaluating the PHC objective over a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhcReport {
    /// The paper's objective: Σ rows Σ matched-prefix cells len².
    pub phc: u64,
    /// Linear token count of matched prefixes (numerator of the hit rate).
    pub hit_tokens: u64,
    /// Total token count of all scheduled cells (denominator of the hit rate).
    pub total_tokens: u64,
}

impl PhcReport {
    /// Fraction of field tokens covered by matched prefixes, in `[0, 1]`.
    ///
    /// Returns `0.0` for an empty schedule. Note this is the *field-level*
    /// hit rate; end-to-end rates measured by the serving simulator also
    /// include the shared instruction prefix and block-granularity effects.
    pub fn hit_rate(&self) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / self.total_tokens as f64
        }
    }
}

/// Number of leading cells of `cur` that exactly match `prev` (column and
/// value), i.e. the `c` of Eq. 2.
pub fn hit_prefix_cells(prev: &[(u32, Cell)], cur: &[(u32, Cell)]) -> usize {
    prev.iter()
        .zip(cur.iter())
        .take_while(|((pc, pv), (cc, cv))| pc == cc && pv.value == cv.value)
        .count()
}

/// Evaluates Eq. 1 over already-materialized ordered rows.
///
/// # Examples
///
/// ```
/// use llmqo_core::{phc_of_rows, Cell, ValueId};
/// let v = |id, len| Cell::new(ValueId::from_raw(id), len);
/// let rows = vec![
///     vec![(0, v(7, 3)), (1, v(1, 2))],
///     vec![(0, v(7, 3)), (1, v(2, 2))], // matches first cell: 3² = 9
/// ];
/// let report = phc_of_rows(&rows);
/// assert_eq!(report.phc, 9);
/// assert_eq!(report.hit_tokens, 3);
/// assert_eq!(report.total_tokens, 10);
/// ```
pub fn phc_of_rows(rows: &[OrderedRow]) -> PhcReport {
    let mut report = PhcReport::default();
    for (i, row) in rows.iter().enumerate() {
        report.total_tokens += row.iter().map(|(_, c)| u64::from(c.len)).sum::<u64>();
        if i == 0 {
            continue;
        }
        let matched = hit_prefix_cells(&rows[i - 1], row);
        for (_, cell) in &row[..matched] {
            report.phc += cell.sq_len();
            report.hit_tokens += u64::from(cell.len);
        }
    }
    report
}

/// Evaluates Eq. 1 for a [`ReorderPlan`] against its table.
///
/// This is the ground-truth scorer: solvers may *claim* a PHC (exactly for
/// OPHR, estimated for GGR under inexact functional dependencies), and tests
/// compare those claims against this function.
///
/// # Panics
///
/// Panics if the plan indexes out of bounds; call
/// [`ReorderPlan::validate`] first for untrusted plans.
pub fn phc_of_plan(table: &ReorderTable, plan: &ReorderPlan) -> PhcReport {
    let mut report = PhcReport::default();
    let mut prev: OrderedRow = Vec::new();
    let mut cur: OrderedRow = Vec::new();
    for (i, rp) in plan.rows.iter().enumerate() {
        cur.clear();
        cur.extend(
            rp.fields
                .iter()
                .map(|&f| (f, table.cell(rp.row, f as usize))),
        );
        report.total_tokens += cur.iter().map(|(_, c)| u64::from(c.len)).sum::<u64>();
        if i > 0 {
            let matched = hit_prefix_cells(&prev, &cur);
            for (_, cell) in &cur[..matched] {
                report.phc += cell.sq_len();
                report.hit_tokens += u64::from(cell.len);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RowPlan;
    use crate::ValueId;

    fn c(id: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), len)
    }

    #[test]
    fn empty_schedule_is_zero() {
        let report = phc_of_rows(&[]);
        assert_eq!(report, PhcReport::default());
        assert_eq!(report.hit_rate(), 0.0);
    }

    #[test]
    fn single_row_has_no_hits() {
        let rows = vec![vec![(0, c(1, 5)), (1, c(2, 5))]];
        let report = phc_of_rows(&rows);
        assert_eq!(report.phc, 0);
        assert_eq!(report.total_tokens, 10);
    }

    #[test]
    fn full_match_sums_all_squares() {
        let row: OrderedRow = vec![(0, c(1, 2)), (1, c(2, 3))];
        let rows = vec![row.clone(), row];
        let report = phc_of_rows(&rows);
        assert_eq!(report.phc, 4 + 9);
        assert_eq!(report.hit_tokens, 5);
        assert!((report.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mismatch_stops_the_prefix() {
        // Second cell differs: only the first counts. Third would match but
        // is not consecutive (Eq. 2: must be a prefix).
        let rows = vec![
            vec![(0, c(1, 2)), (1, c(2, 3)), (2, c(3, 4))],
            vec![(0, c(1, 2)), (1, c(9, 3)), (2, c(3, 4))],
        ];
        let report = phc_of_rows(&rows);
        assert_eq!(report.phc, 4);
        assert_eq!(report.hit_tokens, 2);
    }

    #[test]
    fn same_value_different_column_is_not_a_hit() {
        let rows = vec![vec![(0, c(1, 2))], vec![(1, c(1, 2))]];
        assert_eq!(phc_of_rows(&rows).phc, 0);
    }

    #[test]
    fn hits_are_pairwise_with_previous_row_only() {
        // Row 3 matches row 1 but not row 2: no hit (Eq. 2 compares r−1).
        let rows = vec![vec![(0, c(1, 3))], vec![(0, c(2, 3))], vec![(0, c(1, 3))]];
        assert_eq!(phc_of_rows(&rows).phc, 0);
    }

    #[test]
    fn figure_1a_worst_case() {
        // Paper Fig. 1a: first field unique per row, remaining m−1 fields
        // constant. Fixed (schema) order: PHC = 0. Optimized order (shared
        // fields first): PHC = (n−1)(m−1) with unit lengths.
        let n = 5;
        let m = 4;
        let mut fixed = Vec::new();
        let mut better = Vec::new();
        for r in 0..n {
            let unique = (0u32, c(100 + r, 1));
            let shared: Vec<(u32, Cell)> = (1..m).map(|f| (f, c(f, 1))).collect();
            let mut fixed_row = vec![unique];
            fixed_row.extend(shared.clone());
            fixed.push(fixed_row);
            let mut better_row = shared;
            better_row.push(unique);
            better.push(better_row);
        }
        assert_eq!(phc_of_rows(&fixed).phc, 0);
        assert_eq!(
            phc_of_rows(&better).phc,
            u64::from(n - 1) * u64::from(m - 1)
        );
    }

    #[test]
    fn plan_scorer_matches_row_scorer() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        t.push_row(vec![c(1, 2), c(2, 3)]).unwrap();
        t.push_row(vec![c(1, 2), c(3, 3)]).unwrap();
        t.push_row(vec![c(4, 2), c(3, 3)]).unwrap();

        let plan = ReorderPlan {
            rows: vec![
                RowPlan::new(2, vec![1, 0]),
                RowPlan::new(1, vec![1, 0]),
                RowPlan::new(0, vec![0, 1]),
            ],
        };
        let materialized: Vec<OrderedRow> = plan
            .rows
            .iter()
            .map(|rp| {
                rp.fields
                    .iter()
                    .map(|&f| (f, t.cell(rp.row, f as usize)))
                    .collect()
            })
            .collect();
        assert_eq!(phc_of_plan(&t, &plan), phc_of_rows(&materialized));
        // Row 1 follows row 2 sharing field 1 value 3 (len 3): 9.
        assert_eq!(phc_of_plan(&t, &plan).phc, 9);
    }

    #[test]
    fn identity_plan_counts_adjacent_duplicates() {
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        t.push_row(vec![c(1, 4)]).unwrap();
        t.push_row(vec![c(1, 4)]).unwrap();
        t.push_row(vec![c(1, 4)]).unwrap();
        let plan = ReorderPlan::identity(&t);
        assert_eq!(phc_of_plan(&t, &plan).phc, 2 * 16);
    }

    #[test]
    fn zero_length_cells_contribute_nothing() {
        let rows = vec![vec![(0, c(1, 0))], vec![(0, c(1, 0))]];
        let report = phc_of_rows(&rows);
        assert_eq!(report.phc, 0);
        assert_eq!(report.hit_tokens, 0);
        assert_eq!(report.total_tokens, 0);
        assert_eq!(report.hit_rate(), 0.0);
    }
}
