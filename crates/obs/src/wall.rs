//! Wall-clock profiling behind the `wallclock` feature.
//!
//! The simulator's observable clock is deterministic sim time; wall-clock
//! readings are host noise and must never feed the sim-time tracer (a
//! trace would stop being byte-reproducible). [`WallTimer`] therefore only
//! ever lands in registry *histograms*, and only exists at all when the
//! consumer (the bench crate's `perf_trace`) enables the feature — with it
//! disabled, the type is zero-sized and every method compiles away.

use crate::metrics::Histogram;

/// A started wall-clock timer, observed into a histogram on completion.
///
/// Without the `wallclock` feature this is a zero-sized no-op. With it,
/// [`WallTimer::start`] reads `std::time::Instant` only when the global
/// sinks are enabled, so instrumented-but-disabled runs stay free of
/// syscalls too.
#[derive(Debug)]
pub struct WallTimer {
    #[cfg(feature = "wallclock")]
    started: Option<std::time::Instant>,
}

impl WallTimer {
    /// Starts a timer (no-op unless the `wallclock` feature is on and the
    /// sinks are enabled).
    #[inline]
    pub fn start() -> Self {
        WallTimer {
            #[cfg(feature = "wallclock")]
            started: crate::enabled().then(std::time::Instant::now),
        }
    }

    /// Records the elapsed wall seconds into `histogram` (no-op when the
    /// timer never started).
    #[inline]
    pub fn observe(self, histogram: &Histogram) {
        #[cfg(feature = "wallclock")]
        if let Some(t) = self.started {
            histogram.record(t.elapsed().as_secs_f64());
        }
        #[cfg(not(feature = "wallclock"))]
        let _ = histogram;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[cfg(not(feature = "wallclock"))]
    #[test]
    fn featureless_timer_records_nothing() {
        let r = Registry::new();
        let h = r.histogram("test.wall");
        let t = WallTimer::start();
        t.observe(h);
        assert_eq!(h.count(), 0);
    }

    #[cfg(feature = "wallclock")]
    #[test]
    fn enabled_timer_records_elapsed_time() {
        let r = Registry::new();
        let h = r.histogram("test.wall.enabled");
        crate::set_enabled(true);
        let t = WallTimer::start();
        std::hint::black_box(0u64);
        t.observe(h);
        crate::set_enabled(false);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }
}
