//! The metrics registry: counters, gauges, log-bucketed histograms, and
//! the Prometheus-text / JSON exporters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the gauge to the max of its current value and `v`.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Buckets per power of two (the top three mantissa bits): bucket `q` of an
/// octave covers `[1 + q/8, 1 + (q+1)/8) · 2^e`, so a quantile estimate —
/// the geometric midpoint of the exact sample's bucket — is within
/// `√(9/8) − 1 ≈ 6.1%` of the exact order statistic.
const SUB: usize = 8;
/// Smallest finite bucketed exponent: values below 2^-64 (and all
/// non-positive or non-finite values) land in the underflow bucket.
const MIN_EXP: i32 = -64;
/// Largest bucketed exponent: values at/above 2^64 land in overflow.
const MAX_EXP: i32 = 64;
const SPAN: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB;
/// Underflow + span + overflow.
const NUM_BUCKETS: usize = SPAN + 2;

/// A log-bucketed histogram with nearest-rank quantile estimation.
///
/// Positive finite values in `[2^-64, 2^64)` are bucketed by exponent and
/// the top three mantissa bits (8 sub-buckets per octave); everything else
/// falls into an underflow bucket (reported as `0.0`) or an overflow
/// bucket. [`quantile`](Histogram::quantile) uses the same nearest-rank
/// rule as `llmqo_serve::percentile`, applied to the bucket counts, and
/// returns the geometric midpoint of the selected bucket — within
/// √(9/8) − 1 ≈ 6.1% of the exact order statistic.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

fn bucket_index(v: f64) -> usize {
    let min = (MIN_EXP as f64).exp2();
    if !v.is_finite() || v < min {
        return 0; // underflow: non-positive, tiny, or NaN
    }
    if v >= (MAX_EXP as f64).exp2() {
        return NUM_BUCKETS - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let frac = ((bits >> 49) & 0b111) as usize;
    ((exp - MIN_EXP) as usize) * SUB + frac + 1
}

fn bucket_representative(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx == NUM_BUCKETS - 1 {
        return (MAX_EXP as f64).exp2();
    }
    let off = idx - 1;
    let scale = ((MIN_EXP + (off / SUB) as i32) as f64).exp2();
    let q = (off % SUB) as f64;
    // Geometric midpoint of the linear sub-bucket [1 + q/8, 1 + (q+1)/8)·2^e.
    let lo = 1.0 + q / SUB as f64;
    let hi = 1.0 + (q + 1.0) / SUB as f64;
    scale * (lo * hi).sqrt()
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile estimate (`p` in `[0, 1]`); `0.0` when empty.
    ///
    /// The rank rule is identical to `llmqo_serve::percentile` —
    /// `ceil(p · n)` clamped to `[1, n]` — so the estimate lands in the
    /// bucket containing the exact order statistic and is therefore within
    /// one bucket's growth factor of it.
    pub fn quantile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_representative(idx);
            }
        }
        bucket_representative(NUM_BUCKETS - 1)
    }

    /// A point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A process-wide registry of named metrics.
///
/// Handles are `&'static`: a metric, once created, lives for the process.
/// Instrumentation sites cache handles in `OnceLock`s so the steady-state
/// cost of a *disabled* site is one branch, and of an enabled one a single
/// atomic add — no name lookup, no lock.
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

pub(crate) fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry {
        inner: Mutex::new(BTreeMap::new()),
    };
    &GLOBAL
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty, standalone registry. Most code uses the process-wide one
    /// via [`crate::registry`]; standalone registries exist for tests and
    /// embedders that want isolated metric namespaces. Handles are still
    /// `&'static` (metrics are leaked on creation) so call-site caching
    /// works identically.
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let metric = *inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))));
        match metric {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let metric = *inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))));
        match metric {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let metric = *inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))));
        match metric {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Zeroes every registered metric. Handles stay valid; registration
    /// survives. Used between runs that share the process (benches, tests).
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("registry poisoned");
        for metric in inner.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Exports every metric in Prometheus text exposition format, sorted by
    /// metric name (deterministic byte-for-byte for a given state). Dots in
    /// registered names become underscores; histograms export as summaries
    /// (`{quantile=...}` samples plus `_sum` and `_count`).
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, metric) in inner.iter() {
            let name = sanitize_prom_name(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "# TYPE {name} summary\n\
                         {name}{{quantile=\"0.5\"}} {}\n\
                         {name}{{quantile=\"0.9\"}} {}\n\
                         {name}{{quantile=\"0.99\"}} {}\n\
                         {name}_sum {}\n\
                         {name}_count {}\n",
                        s.p50, s.p90, s.p99, s.sum, s.count
                    ));
                }
            }
        }
        out
    }

    /// Exports every metric as a JSON object, keys sorted by metric name.
    pub fn json_snapshot(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    push_entry(&mut counters, name, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    push_entry(&mut gauges, name, &json_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let body = format!(
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        s.count,
                        json_f64(s.sum),
                        json_f64(s.p50),
                        json_f64(s.p90),
                        json_f64(s.p99)
                    );
                    push_entry(&mut histograms, name, &body);
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

fn push_entry(out: &mut String, key: &str, value: &str) {
    if !out.is_empty() {
        out.push(',');
    }
    out.push('"');
    out.push_str(&crate::json::escape(key));
    out.push_str("\":");
    out.push_str(value);
}

/// JSON has no NaN/Infinity literals; clamp them to null-adjacent strings
/// would break numeric consumers, so export them as 0 (they never occur in
/// practice — sums of finite samples).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn sanitize_prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// One sample line of Prometheus text exposition format.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric (sample) name.
    pub name: String,
    /// Label pairs inside `{...}`, in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition format into its sample lines (comments
/// and blank lines skipped). Used by CI to prove the exporter round-trips.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| err("missing value"))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        {
            return Err(err("invalid metric name"));
        }
        let mut rest = &line[name_end..];
        let mut labels = Vec::new();
        if let Some(stripped) = rest.strip_prefix('{') {
            let close = stripped
                .find('}')
                .ok_or_else(|| err("unclosed label set"))?;
            let body = &stripped[..close];
            rest = &stripped[close + 1..];
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(|| err("label without ="))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| err("unquoted label value"))?;
                labels.push((k.trim().to_owned(), v.to_owned()));
            }
        }
        let value: f64 = rest
            .trim()
            .parse()
            .map_err(|_| err("unparseable sample value"))?;
        samples.push(PromSample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact nearest-rank percentile the histogram estimate is
    /// validated against (mirrors `llmqo_serve::percentile`).
    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("test.metrics.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles() {
        let h = Histogram::new();
        let mut samples: Vec<f64> = (1..500u32)
            .map(|i| f64::from(i * 37 % 499) * 0.013 + 0.001)
            .collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&samples, p);
            let est = h.quantile(p);
            let ratio = est / exact;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "p{p}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), samples.len() as u64);
        let exact_sum: f64 = samples.iter().sum();
        assert!((h.sum() - exact_sum).abs() < 1e-9);
    }

    #[test]
    fn histogram_edge_values() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.quantile(0.5), 0.0, "non-positive samples report as 0");
        h.record(1e300);
        assert_eq!(h.quantile(1.0), 2f64.powi(64), "overflow clamps");
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        let mut v = 1e-19f64;
        while v < 1e20 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(bucket_representative(idx) > 0.0);
            prev = idx;
            v *= 1.07;
        }
    }

    #[test]
    fn prometheus_text_round_trips_and_sorts() {
        let r = Registry::new();
        r.counter("test.prom.zebra").add(3);
        r.gauge("test.prom.alpha").set(1.25);
        let h = r.histogram("test.prom.hist");
        h.record(0.5);
        h.record(2.0);
        let text = r.prometheus_text();
        let samples = parse_prometheus(&text).unwrap();
        let find = |n: &str| samples.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("test_prom_zebra").value, 3.0);
        assert_eq!(find("test_prom_alpha").value, 1.25);
        assert_eq!(find("test_prom_hist_count").value, 2.0);
        let q50 = samples
            .iter()
            .find(|s| s.name == "test_prom_hist" && s.labels == [("quantile".into(), "0.5".into())])
            .unwrap();
        assert!(q50.value > 0.0);
        // Names appear in sorted order.
        let alpha = text.find("test_prom_alpha").unwrap();
        let zebra = text.find("test_prom_zebra").unwrap();
        assert!(alpha < zebra);
        // Exporting twice with no writes in between is byte-identical.
        assert_eq!(text, r.prometheus_text());
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = Registry::new();
        r.counter("test.json.count").inc();
        r.gauge("test.json.gauge").set(0.75);
        r.histogram("test.json.hist").record(1.0);
        let json = r.json_snapshot();
        crate::json::validate_json(&json).unwrap();
        assert!(json.contains("\"test.json.count\":"));
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("test.mismatch");
        r.counter("test.mismatch");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("9bad_name 1").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("name notanumber").is_err());
        assert!(parse_prometheus("# comment only\n\n").unwrap().is_empty());
    }
}
