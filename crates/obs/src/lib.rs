//! Zero-dependency observability for the `llmqo` workspace.
//!
//! Three pieces, all global, all **no-ops by default**:
//!
//! * A [`Registry`] of named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s with quantile estimation, exportable as Prometheus text
//!   exposition format ([`Registry::prometheus_text`]) and as a JSON
//!   snapshot ([`Registry::json_snapshot`]).
//! * A [`Tracer`] of spans and instant events whose clock is the **engine's
//!   discrete-event sim time**, not the wall clock — two identical runs
//!   produce byte-identical traces. Exports Chrome `trace_event` JSON
//!   ([`Tracer::export_chrome_json`]) viewable in Perfetto or
//!   `chrome://tracing`.
//! * An optional wall-clock profiling channel ([`WallTimer`]) behind the
//!   `wallclock` cargo feature, for attributing *host* time (where does a
//!   cached simulation spend its milliseconds?) without ever contaminating
//!   the deterministic sim-time trace.
//!
//! # The no-op-by-default sink contract
//!
//! Instrumented code guards every recording with [`enabled`] — a single
//! relaxed atomic load — and holds `&'static` metric handles (from
//! [`Registry::counter`] and friends, cached in `OnceLock`s at the call
//! site), so a disabled run pays one predictable branch per site and
//! allocates nothing. Instrumentation never reads state back into the
//! simulation: enabling or disabling observability cannot change a single
//! byte of any `SessionReport`, `ClusterReport`, or `SqlResult`. The
//! workspace-level differential suite (`tests/obs_differential.rs`)
//! enforces exactly that.
//!
//! # Example
//!
//! ```
//! use llmqo_obs as obs;
//!
//! obs::set_enabled(true);
//! obs::registry().counter("demo.events").inc();
//! obs::tracer().complete(0, 7, "phase", "demo", 0.5, 0.25, &[]);
//! let text = obs::registry().prometheus_text();
//! assert!(text.contains("demo_events 1"));
//! let trace = obs::tracer().export_chrome_json();
//! obs::validate_json(&trace).unwrap();
//! obs::set_enabled(false);
//! obs::registry().reset();
//! obs::tracer().clear();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod trace;
mod wall;

pub use json::validate_json;
pub use metrics::{
    parse_prometheus, Counter, Gauge, Histogram, HistogramSnapshot, PromSample, Registry,
};
pub use trace::{ArgValue, Tracer};
pub use wall::WallTimer;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability sinks are recording. The cheap check every
/// instrumentation site performs first — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global sinks on or off. Off (the default) makes every
/// instrumentation site a single predictable branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    metrics::global()
}

/// The process-wide sim-time tracer.
pub fn tracer() -> &'static Tracer {
    trace::global()
}
