//! The sim-time span/event tracer and its Chrome `trace_event` exporter.
//!
//! Timestamps are **simulation seconds** supplied by the caller (the
//! engine's discrete-event clock), converted to the microseconds Chrome's
//! trace format expects with a fixed `round(t · 1e6)` rule — so a
//! deterministic simulation produces a byte-identical trace. Lanes map to
//! trace `pid`s (lane 0 is the default/SQL lane; cluster replicas take
//! lane `index + 1`) and tracks to `tid`s (request ids for lifecycle
//! spans, operator indices for executor phases).

use crate::json::escape;
use std::sync::Mutex;

/// Hard cap on buffered events; further events are counted, not stored,
/// so a runaway trace degrades deterministically instead of exhausting
/// memory.
const MAX_EVENTS: usize = 4_000_000;

/// A typed argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer argument.
    U64(u64),
    /// A float argument.
    F64(f64),
    /// A string argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

#[derive(Debug)]
struct TraceEvent {
    ph: char,
    name: String,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    pid: u32,
    tid: u64,
    args: Vec<(&'static str, ArgValue)>,
}

#[derive(Debug)]
struct TraceState {
    events: Vec<TraceEvent>,
    /// Lane-name metadata, emitted as `process_name` metadata events.
    lanes: Vec<(u32, String)>,
    dropped: u64,
}

/// The sim-time tracer. All recording methods are cheap no-ops while the
/// buffer is full; callers additionally guard with [`crate::enabled`] so a
/// disabled run never takes the lock at all.
pub struct Tracer {
    state: Mutex<TraceState>,
}

pub(crate) fn global() -> &'static Tracer {
    static GLOBAL: Tracer = Tracer {
        state: Mutex::new(TraceState {
            events: Vec::new(),
            lanes: Vec::new(),
            dropped: 0,
        }),
    };
    &GLOBAL
}

/// Sim seconds → Chrome trace microseconds, the one conversion rule used
/// everywhere (determinism depends on there being exactly one).
fn to_us(t_s: f64) -> u64 {
    let us = (t_s * 1e6).round();
    if us <= 0.0 {
        0
    } else {
        us as u64
    }
}

impl Tracer {
    fn push(&self, event: TraceEvent) {
        let mut state = self.state.lock().expect("tracer poisoned");
        if state.events.len() >= MAX_EVENTS {
            state.dropped += 1;
            return;
        }
        state.events.push(event);
    }

    /// Records a complete span (`ph: "X"`): `[ts_s, ts_s + dur_s)` on lane
    /// `lane`, track `track`.
    #[allow(clippy::too_many_arguments)] // one parameter per trace_event field
    pub fn complete(
        &self,
        lane: u32,
        track: u64,
        name: &str,
        cat: &'static str,
        ts_s: f64,
        dur_s: f64,
        args: &[(&'static str, ArgValue)],
    ) {
        self.push(TraceEvent {
            ph: 'X',
            name: name.to_owned(),
            cat,
            ts_us: to_us(ts_s),
            dur_us: to_us(dur_s),
            pid: lane,
            tid: track,
            args: args.to_vec(),
        });
    }

    /// Records an instant event (`ph: "i"`) at `ts_s`.
    pub fn instant(
        &self,
        lane: u32,
        track: u64,
        name: &str,
        cat: &'static str,
        ts_s: f64,
        args: &[(&'static str, ArgValue)],
    ) {
        self.push(TraceEvent {
            ph: 'i',
            name: name.to_owned(),
            cat,
            ts_us: to_us(ts_s),
            dur_us: 0,
            pid: lane,
            tid: track,
            args: args.to_vec(),
        });
    }

    /// Names a lane (rendered by trace viewers as the process name). Idempotent
    /// per `(lane, name)` pair.
    pub fn name_lane(&self, lane: u32, name: &str) {
        let mut state = self.state.lock().expect("tracer poisoned");
        if !state.lanes.iter().any(|(l, n)| *l == lane && n == name) {
            state.lanes.push((lane, name.to_owned()));
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().expect("tracer poisoned").events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped after the buffer cap was reached.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("tracer poisoned").dropped
    }

    /// Discards all buffered events and lane names.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("tracer poisoned");
        state.events.clear();
        state.lanes.clear();
        state.dropped = 0;
    }

    /// Exports the buffer as Chrome `trace_event` JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto or
    /// `chrome://tracing`. Events appear in recording order; the export is
    /// byte-deterministic for a given buffer.
    pub fn export_chrome_json(&self) -> String {
        let state = self.state.lock().expect("tracer poisoned");
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
        };
        for (lane, name) in &state.lanes {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{lane},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for e in &state.events {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
                escape(&e.name),
                escape(e.cat),
                e.ph,
                e.ts_us
            ));
            if e.ph == 'X' {
                out.push_str(&format!("\"dur\":{},", e.dur_us));
            }
            if e.ph == 'i' {
                // Thread-scoped instants render as small arrows on the track.
                out.push_str("\"s\":\"t\",");
            }
            out.push_str(&format!("\"pid\":{},\"tid\":{}", e.pid, e.tid));
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":", escape(k)));
                    match v {
                        ArgValue::U64(n) => out.push_str(&n.to_string()),
                        ArgValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
                        ArgValue::F64(_) => out.push('0'),
                        ArgValue::Str(s) => out.push_str(&format!("\"{}\"", escape(s))),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str(&format!("],\"droppedEvents\":{}}}", state.dropped));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    /// A standalone tracer so tests cannot interfere through the global.
    fn tracer() -> Tracer {
        Tracer {
            state: Mutex::new(TraceState {
                events: Vec::new(),
                lanes: Vec::new(),
                dropped: 0,
            }),
        }
    }

    #[test]
    fn export_is_valid_json_and_deterministic() {
        let record = |t: &Tracer| {
            t.name_lane(1, "replica 0");
            t.complete(
                1,
                42,
                "prefill",
                "request",
                0.0181,
                0.0537,
                &[("prompt_tokens", 128u64.into()), ("cached", 0.5f64.into())],
            );
            t.instant(
                0,
                3,
                "route \"x\"",
                "router",
                0.001,
                &[("replica", 1usize.into())],
            );
            t.export_chrome_json()
        };
        let a = record(&tracer());
        let b = record(&tracer());
        assert_eq!(a, b, "identical recordings export identically");
        validate_json(&a).unwrap();
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"dur\":53700"));
        assert!(a.contains("\"ts\":18100"));
        assert!(a.contains("process_name"));
        assert!(a.contains("route \\\"x\\\""), "names are escaped: {a}");
    }

    #[test]
    fn timestamps_round_half_up_in_microseconds() {
        assert_eq!(to_us(0.0), 0);
        assert_eq!(to_us(1.0), 1_000_000);
        assert_eq!(to_us(0.0000004), 0);
        assert_eq!(to_us(0.0000006), 1);
        assert_eq!(to_us(-1.0), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let t = tracer();
        t.complete(0, 0, "a", "c", 0.0, 1.0, &[]);
        t.name_lane(0, "lane");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        let empty = t.export_chrome_json();
        validate_json(&empty).unwrap();
        assert!(empty.contains("\"traceEvents\":[]"));
    }
}
