//! Minimal JSON utilities: string escaping for the exporters and a
//! well-formedness validator used by CI to check emitted artifacts
//! (the workspace's vendored `serde` has no JSON backend).

/// Escapes a string for embedding inside JSON double quotes.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Validates that `text` is one well-formed JSON value (object, array,
/// string, number, boolean, or null) with nothing but whitespace after it.
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(())
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        debug_assert!(self.pos > start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            "\"a \\\"quoted\\\" string\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u00e9\"}",
            "  [1, 2, 3]  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "\"bad\\q\"",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let json = format!("{{\"k\":\"{}\"}}", escape(nasty));
        validate_json(&json).unwrap();
    }
}
