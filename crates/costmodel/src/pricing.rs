//! Price schedules and billable usage.

use serde::{Deserialize, Serialize};

/// Per-million-token prices and cache qualification rules for one provider
/// model.
///
/// # Examples
///
/// ```
/// use llmqo_costmodel::{Pricing, Usage};
/// let p = Pricing::gpt4o_mini();
/// let usage = Usage {
///     uncached_input: 1_000_000,
///     cached_input: 1_000_000,
///     cache_write: 0,
///     output: 0,
/// };
/// // 1M uncached at $0.15 + 1M cached at $0.075.
/// assert!((usage.cost(&p) - 0.225).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// Model name for reports.
    pub name: String,
    /// $ per 1M uncached input tokens.
    pub input_per_mtok: f64,
    /// $ per 1M cached (read) input tokens.
    pub cached_per_mtok: f64,
    /// $ per 1M cache-written input tokens (equals `input_per_mtok` when the
    /// provider charges no write premium).
    pub write_per_mtok: f64,
    /// $ per 1M output tokens.
    pub output_per_mtok: f64,
    /// Minimum prefix length that can be cached.
    pub min_prefix_tokens: usize,
    /// Prefix-length granularity for automatic caching (OpenAI: 128).
    pub cache_granularity: usize,
}

impl Pricing {
    /// OpenAI GPT-4o-mini (paper footnote 2): $0.15/M input, $0.075/M
    /// cached, $0.60/M output; automatic caching from 1 024 tokens in
    /// 128-token increments.
    pub fn gpt4o_mini() -> Self {
        Pricing {
            name: "GPT-4o-mini".to_owned(),
            input_per_mtok: 0.15,
            cached_per_mtok: 0.075,
            write_per_mtok: 0.15,
            output_per_mtok: 0.60,
            min_prefix_tokens: 1024,
            cache_granularity: 128,
        }
    }

    /// Anthropic Claude 3.5 Sonnet (paper footnote 3): $3/M input, $3.75/M
    /// cache write, $0.30/M cache read, $15/M output; explicit breakpoints
    /// from 1 024 tokens.
    pub fn claude35_sonnet() -> Self {
        Pricing {
            name: "Claude 3.5 Sonnet".to_owned(),
            input_per_mtok: 3.0,
            cached_per_mtok: 0.30,
            write_per_mtok: 3.75,
            output_per_mtok: 15.0,
            min_prefix_tokens: 1024,
            cache_granularity: 1024,
        }
    }

    /// Analytical input-cost multiplier at prefix hit rate `phr`
    /// (Table 4's model): uncached tokens pay the write rate, cached tokens
    /// the read rate, normalized by the base input rate.
    pub fn estimated_cost_ratio(&self, phr: f64) -> f64 {
        let phr = phr.clamp(0.0, 1.0);
        ((1.0 - phr) * self.write_per_mtok + phr * self.cached_per_mtok) / self.input_per_mtok
    }

    /// Estimated relative savings of an optimized ordering over a baseline
    /// ordering, both using this provider's cache (Table 4).
    pub fn estimated_savings(&self, baseline_phr: f64, optimized_phr: f64) -> f64 {
        1.0 - self.estimated_cost_ratio(optimized_phr) / self.estimated_cost_ratio(baseline_phr)
    }
}

/// Billable token counts accumulated over a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    /// Input tokens billed at the base rate.
    pub uncached_input: u64,
    /// Input tokens billed at the cached (read) rate.
    pub cached_input: u64,
    /// Input tokens billed at the cache-write rate.
    pub cache_write: u64,
    /// Output tokens.
    pub output: u64,
}

impl Usage {
    /// Adds another usage record into this one.
    pub fn add(&mut self, other: Usage) {
        self.uncached_input += other.uncached_input;
        self.cached_input += other.cached_input;
        self.cache_write += other.cache_write;
        self.output += other.output;
    }

    /// Total input tokens regardless of billing class.
    pub fn total_input(&self) -> u64 {
        self.uncached_input + self.cached_input + self.cache_write
    }

    /// Fraction of input tokens served from cache (the provider-measured
    /// hit rate of paper Table 3).
    pub fn hit_rate(&self) -> f64 {
        if self.total_input() == 0 {
            0.0
        } else {
            self.cached_input as f64 / self.total_input() as f64
        }
    }

    /// Dollar cost under `pricing`.
    pub fn cost(&self, pricing: &Pricing) -> f64 {
        (self.uncached_input as f64 * pricing.input_per_mtok
            + self.cached_input as f64 * pricing.cached_per_mtok
            + self.cache_write as f64 * pricing.write_per_mtok
            + self.output as f64 * pricing.output_per_mtok)
            / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openai_prices_match_paper_footnote() {
        let p = Pricing::gpt4o_mini();
        assert_eq!(p.input_per_mtok, 0.15);
        assert_eq!(p.cached_per_mtok, 0.075);
        assert_eq!(p.write_per_mtok, p.input_per_mtok, "no write premium");
    }

    #[test]
    fn anthropic_prices_match_paper_footnote() {
        let p = Pricing::claude35_sonnet();
        assert_eq!(p.input_per_mtok, 3.0);
        assert_eq!(p.write_per_mtok, 3.75);
        assert_eq!(p.cached_per_mtok, 0.30);
    }

    #[test]
    fn cost_accumulates_all_classes() {
        let p = Pricing::claude35_sonnet();
        let u = Usage {
            uncached_input: 1_000_000,
            cached_input: 2_000_000,
            cache_write: 1_000_000,
            output: 100_000,
        };
        let expected = 3.0 + 2.0 * 0.30 + 3.75 + 0.1 * 15.0;
        assert!((u.cost(&p) - expected).abs() < 1e-9);
        assert_eq!(u.total_input(), 4_000_000);
        assert!((u.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn savings_increase_with_hit_rate() {
        let p = Pricing::gpt4o_mini();
        let low = p.estimated_cost_ratio(0.1);
        let high = p.estimated_cost_ratio(0.9);
        assert!(high < low);
        assert!(p.estimated_savings(0.1, 0.9) > 0.0);
    }

    #[test]
    fn openai_table4_movies_row() {
        // Paper Table 4: Movies PHR 34.6% → 85.7% yields ≈31% OpenAI savings.
        let p = Pricing::gpt4o_mini();
        let s = p.estimated_savings(0.346, 0.857);
        assert!((s - 0.31).abs() < 0.02, "got {s}");
    }

    #[test]
    fn anthropic_table4_movies_row() {
        // Paper Table 4: Movies → ≈73% Anthropic savings; our model lands
        // within a few points.
        let p = Pricing::claude35_sonnet();
        let s = p.estimated_savings(0.346, 0.857);
        assert!((s - 0.73).abs() < 0.06, "got {s}");
    }

    #[test]
    fn anthropic_write_premium_can_make_low_hit_caching_unprofitable() {
        // At 0% hit rate everything is written at 1.25×: ratio > 1.
        let p = Pricing::claude35_sonnet();
        assert!(p.estimated_cost_ratio(0.0) > 1.0);
        // Break-even near p = 0.25/1.15 ≈ 0.217.
        assert!(p.estimated_cost_ratio(0.3) < 1.0);
    }

    #[test]
    fn usage_add() {
        let mut a = Usage::default();
        a.add(Usage {
            uncached_input: 1,
            cached_input: 2,
            cache_write: 3,
            output: 4,
        });
        a.add(Usage {
            uncached_input: 10,
            cached_input: 20,
            cache_write: 30,
            output: 40,
        });
        assert_eq!(a.uncached_input, 11);
        assert_eq!(a.output, 44);
    }

    #[test]
    fn hit_rate_of_empty_usage_is_zero() {
        assert_eq!(Usage::default().hit_rate(), 0.0);
    }
}
