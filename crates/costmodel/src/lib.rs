//! # llmqo-costmodel — provider prompt-cache pricing (paper §6.3)
//!
//! The paper evaluates cost savings on OpenAI GPT-4o-mini and Anthropic
//! Claude 3.5 Sonnet, whose prompt caches have *different* billing and
//! qualification rules:
//!
//! * **OpenAI** — automatic longest-prefix caching; a prefix qualifies only
//!   from 1 024 tokens, extending in 128-token increments; cached input is
//!   billed at 50% of the base rate, and there is no write premium.
//! * **Anthropic** — the user marks explicit cache breakpoints; writes cost
//!   1.25× the base input rate and reads 0.10×. The paper conservatively
//!   marks only the first 1 024 tokens of every request for caching.
//!
//! This crate simulates both providers' cache behaviour over a stream of
//! prompts ([`OpenAiCache`], [`AnthropicCache`]), accumulates billable
//! [`Usage`], prices it ([`Pricing`]), and provides the analytical model
//! behind the paper's Table 4 ([`Pricing::estimated_cost_ratio`]). It also
//! exposes the per-operator estimates ([`LlmOpEstimate`]) the relational
//! layer's cost-based optimizer uses to order LLM predicates, and the
//! Beta-smoothed [`SelectivityPosterior`] its adaptive executor refines
//! those estimates with at runtime. Model-tier cascades extend the same
//! machinery across models: [`ModelTier`]/[`CascadePlan`] price a
//! cheap-first, escalate-on-low-confidence plan per operator, and
//! [`TierPosterior`] learns the escalation and cheap-vs-expensive agreement
//! rates online.
//!
//! # Example
//!
//! Price two candidate filter orders and verify the optimizer's ranking
//! rule picks the cheaper one, then sharpen an estimate with observations:
//!
//! ```
//! use llmqo_costmodel::{LlmOpEstimate, Pricing, SelectivityPosterior};
//!
//! let pricing = Pricing::gpt4o_mini();
//! let cheap_picky = LlmOpEstimate::new(120.0, 2.0, 0.2);
//! let pricey_lax = LlmOpEstimate::new(900.0, 40.0, 0.9);
//! // Ascending cost/(1−selectivity) minimizes expected spend.
//! assert!(cheap_picky.rank(&pricing) < pricey_lax.rank(&pricing));
//!
//! // At runtime the executor observes the "picky" filter passing nearly
//! // everything; the posterior pulls its selectivity up and its priority
//! // down.
//! let mut post = SelectivityPosterior::new(cheap_picky.selectivity, 8.0);
//! post.observe(97, 100);
//! let revised = cheap_picky.with_selectivity(post.mean());
//! assert!(revised.rank(&pricing) > cheap_picky.rank(&pricing));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cascade;
mod operator;
mod pricing;
mod provider;

pub use cascade::{CascadePlan, ModelTier, TierPosterior, CONFIDENCE_DRAW};
pub use operator::{LlmOpEstimate, SelectivityPosterior};
pub use pricing::{Pricing, Usage};
pub use provider::{AnthropicCache, OpenAiCache, ProviderCache};
