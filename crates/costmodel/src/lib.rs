//! # llmqo-costmodel — provider prompt-cache pricing (paper §6.3)
//!
//! The paper evaluates cost savings on OpenAI GPT-4o-mini and Anthropic
//! Claude 3.5 Sonnet, whose prompt caches have *different* billing and
//! qualification rules:
//!
//! * **OpenAI** — automatic longest-prefix caching; a prefix qualifies only
//!   from 1 024 tokens, extending in 128-token increments; cached input is
//!   billed at 50% of the base rate, and there is no write premium.
//! * **Anthropic** — the user marks explicit cache breakpoints; writes cost
//!   1.25× the base input rate and reads 0.10×. The paper conservatively
//!   marks only the first 1 024 tokens of every request for caching.
//!
//! This crate simulates both providers' cache behaviour over a stream of
//! prompts ([`OpenAiCache`], [`AnthropicCache`]), accumulates billable
//! [`Usage`], prices it ([`Pricing`]), and provides the analytical model
//! behind the paper's Table 4 ([`Pricing::estimated_cost_ratio`]). It also
//! exposes the per-operator estimates ([`LlmOpEstimate`]) the relational
//! layer's cost-based optimizer uses to order LLM predicates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod operator;
mod pricing;
mod provider;

pub use operator::LlmOpEstimate;
pub use pricing::{Pricing, Usage};
pub use provider::{AnthropicCache, OpenAiCache, ProviderCache};
