//! Per-operator cost estimates for the relational layer's logical optimizer.
//!
//! The paper's SQL-aware optimizations need a notion of how expensive one
//! `LLM(...)` operator is per row so that (a) cheap SQL predicates always run
//! first and (b) several LLM predicates in one `WHERE` conjunction run in the
//! order that minimizes expected spend. [`LlmOpEstimate`] carries the numbers
//! an optimizer can know *before* execution — average prompt/output tokens
//! per row and an estimated pass rate — and prices them through a
//! [`Pricing`] schedule.
//!
//! Ordering rule: for filters applied in sequence, each one only sees the
//! rows its predecessors passed, so expected cost for order `1, 2, …` is
//! `n·(c₁ + s₁·c₂ + s₁·s₂·c₃ + …)`. The classic exchange argument shows this
//! is minimized by ascending `rank = cost / (1 − selectivity)` — an
//! expensive filter can still deserve the front if it rejects nearly
//! everything.

use crate::pricing::Pricing;
use serde::{Deserialize, Serialize};

/// What the optimizer estimates about one LLM operator before running it.
///
/// # Examples
///
/// ```
/// use llmqo_costmodel::{LlmOpEstimate, Pricing};
/// let cheap_picky = LlmOpEstimate::new(100.0, 2.0, 0.2);
/// let pricey_lax = LlmOpEstimate::new(900.0, 40.0, 0.9);
/// let p = Pricing::gpt4o_mini();
/// // The cheap, highly selective filter should run first.
/// assert!(cheap_picky.rank(&p) < pricey_lax.rank(&p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmOpEstimate {
    /// Average prompt tokens per row (instruction prefix + serialized
    /// fields).
    pub prompt_tokens_per_row: f64,
    /// Average output tokens per row.
    pub output_tokens_per_row: f64,
    /// Estimated fraction of rows the operator *passes* (for filters).
    /// Non-filter operators use `1.0`.
    pub selectivity: f64,
}

impl LlmOpEstimate {
    /// Creates an estimate, clamping `selectivity` into `[0, 1]`.
    pub fn new(prompt_tokens_per_row: f64, output_tokens_per_row: f64, selectivity: f64) -> Self {
        LlmOpEstimate {
            prompt_tokens_per_row,
            output_tokens_per_row,
            selectivity: selectivity.clamp(0.0, 1.0),
        }
    }

    /// Dollar cost of evaluating the operator on one row, assuming uncached
    /// input (a conservative upper bound: ordering decisions should not rely
    /// on hit rates the schedule has not produced yet).
    pub fn per_row_cost(&self, pricing: &Pricing) -> f64 {
        (self.prompt_tokens_per_row * pricing.input_per_mtok
            + self.output_tokens_per_row * pricing.output_per_mtok)
            / 1e6
    }

    /// Dollar cost of evaluating the operator on `rows` rows.
    pub fn total_cost(&self, rows: u64, pricing: &Pricing) -> f64 {
        rows as f64 * self.per_row_cost(pricing)
    }

    /// Ordering key for sequenced filters: `per_row_cost / (1 − selectivity)`,
    /// ascending. A selectivity of 1 (passes everything) ranks last via a
    /// tiny-denominator clamp rather than a division by zero.
    pub fn rank(&self, pricing: &Pricing) -> f64 {
        self.per_row_cost(pricing) / (1.0 - self.selectivity).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_clamped() {
        assert_eq!(LlmOpEstimate::new(1.0, 1.0, 7.0).selectivity, 1.0);
        assert_eq!(LlmOpEstimate::new(1.0, 1.0, -1.0).selectivity, 0.0);
    }

    #[test]
    fn per_row_cost_prices_both_directions() {
        let p = Pricing::gpt4o_mini();
        let e = LlmOpEstimate::new(1_000_000.0, 1_000_000.0, 0.5);
        // 1M input at $0.15 + 1M output at $0.60.
        assert!((e.per_row_cost(&p) - 0.75).abs() < 1e-9);
        assert!((e.total_cost(4, &p) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rank_orders_by_exchange_argument() {
        // Verify the rank rule against the two-filter expected-cost formula
        // on a grid of costs and selectivities.
        let p = Pricing::claude35_sonnet();
        let grid = [
            (50.0, 2.0, 0.1),
            (50.0, 2.0, 0.9),
            (400.0, 30.0, 0.3),
            (400.0, 30.0, 0.7),
            (1200.0, 5.0, 0.5),
        ];
        for &(pa, oa, sa) in &grid {
            for &(pb, ob, sb) in &grid {
                let a = LlmOpEstimate::new(pa, oa, sa);
                let b = LlmOpEstimate::new(pb, ob, sb);
                let (ca, cb) = (a.per_row_cost(&p), b.per_row_cost(&p));
                let ab = ca + sa * cb;
                let ba = cb + sb * ca;
                if a.rank(&p) < b.rank(&p) {
                    assert!(ab <= ba + 1e-12, "rank said a-first but {ab} > {ba}");
                }
                if b.rank(&p) < a.rank(&p) {
                    assert!(ba <= ab + 1e-12, "rank said b-first but {ba} > {ab}");
                }
            }
        }
    }

    #[test]
    fn pass_everything_filter_ranks_last() {
        let p = Pricing::gpt4o_mini();
        let always = LlmOpEstimate::new(10.0, 1.0, 1.0);
        let usually = LlmOpEstimate::new(10_000.0, 500.0, 0.99);
        assert!(always.rank(&p) > usually.rank(&p));
        assert!(always.rank(&p).is_finite());
    }
}
