//! Per-operator cost estimates for the relational layer's logical optimizer.
//!
//! The paper's SQL-aware optimizations need a notion of how expensive one
//! `LLM(...)` operator is per row so that (a) cheap SQL predicates always run
//! first and (b) several LLM predicates in one `WHERE` conjunction run in the
//! order that minimizes expected spend. [`LlmOpEstimate`] carries the numbers
//! an optimizer can know *before* execution — average prompt/output tokens
//! per row and an estimated pass rate — and prices them through a
//! [`Pricing`] schedule.
//!
//! Ordering rule: for filters applied in sequence, each one only sees the
//! rows its predecessors passed, so expected cost for order `1, 2, …` is
//! `n·(c₁ + s₁·c₂ + s₁·s₂·c₃ + …)`. The classic exchange argument shows this
//! is minimized by ascending `rank = cost / (1 − selectivity)` — an
//! expensive filter can still deserve the front if it rejects nearly
//! everything.

use crate::pricing::Pricing;
use serde::{Deserialize, Serialize};

/// A Beta-smoothed selectivity posterior: the static prior the optimizer
/// starts from (typically uniform over the query's label space), updated
/// with pass/fail counts the executor observes at runtime.
///
/// The prior enters as `strength` pseudo-observations split
/// `strength × prior` passes / `strength × (1 − prior)` fails, so early
/// batches nudge the estimate smoothly instead of yanking it to an extreme
/// after one lucky batch, while large observation counts dominate the prior
/// entirely — the standard Beta–Bernoulli posterior mean.
///
/// # Examples
///
/// ```
/// use llmqo_costmodel::SelectivityPosterior;
/// let mut post = SelectivityPosterior::new(0.5, 8.0);
/// assert_eq!(post.mean(), 0.5);
/// post.observe(2, 100); // the filter actually passes ~2% of rows
/// assert!(post.mean() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectivityPosterior {
    /// Pseudo-pass count from the prior (`strength × prior`).
    alpha: f64,
    /// Pseudo-fail count from the prior (`strength × (1 − prior)`).
    beta: f64,
    /// Observed rows that passed.
    passed: u64,
    /// Observed rows offered.
    total: u64,
}

impl SelectivityPosterior {
    /// Creates a posterior around `prior` (clamped to `[0, 1]`) weighted as
    /// `strength` pseudo-observations. A non-positive `strength` is clamped
    /// to a tiny positive weight so the mean is always well defined.
    pub fn new(prior: f64, strength: f64) -> Self {
        let prior = prior.clamp(0.0, 1.0);
        let strength = strength.max(1e-6);
        SelectivityPosterior {
            alpha: strength * prior,
            beta: strength * (1.0 - prior),
            passed: 0,
            total: 0,
        }
    }

    /// Folds in one batch of observations: `passed` of `total` offered rows
    /// passed the filter.
    ///
    /// # Panics
    ///
    /// Panics if `passed > total`.
    pub fn observe(&mut self, passed: u64, total: u64) {
        assert!(passed <= total, "cannot pass more rows than were offered");
        self.passed += passed;
        self.total += total;
    }

    /// The posterior mean pass rate.
    pub fn mean(&self) -> f64 {
        (self.alpha + self.passed as f64) / (self.alpha + self.beta + self.total as f64)
    }

    /// Rows observed so far (0 means the mean is still the pure prior).
    pub fn observations(&self) -> u64 {
        self.total
    }
}

/// What the optimizer estimates about one LLM operator before running it.
///
/// # Examples
///
/// ```
/// use llmqo_costmodel::{LlmOpEstimate, Pricing};
/// let cheap_picky = LlmOpEstimate::new(100.0, 2.0, 0.2);
/// let pricey_lax = LlmOpEstimate::new(900.0, 40.0, 0.9);
/// let p = Pricing::gpt4o_mini();
/// // The cheap, highly selective filter should run first.
/// assert!(cheap_picky.rank(&p) < pricey_lax.rank(&p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmOpEstimate {
    /// Average prompt tokens per row (instruction prefix + serialized
    /// fields).
    pub prompt_tokens_per_row: f64,
    /// Average output tokens per row.
    pub output_tokens_per_row: f64,
    /// Estimated fraction of rows the operator *passes* (for filters).
    /// Non-filter operators use `1.0`.
    pub selectivity: f64,
}

impl LlmOpEstimate {
    /// Creates an estimate, clamping `selectivity` into `[0, 1]`.
    pub fn new(prompt_tokens_per_row: f64, output_tokens_per_row: f64, selectivity: f64) -> Self {
        LlmOpEstimate {
            prompt_tokens_per_row,
            output_tokens_per_row,
            selectivity: selectivity.clamp(0.0, 1.0),
        }
    }

    /// Dollar cost of evaluating the operator on one row, assuming uncached
    /// input (a conservative upper bound: ordering decisions should not rely
    /// on hit rates the schedule has not produced yet).
    pub fn per_row_cost(&self, pricing: &Pricing) -> f64 {
        (self.prompt_tokens_per_row * pricing.input_per_mtok
            + self.output_tokens_per_row * pricing.output_per_mtok)
            / 1e6
    }

    /// Dollar cost of evaluating the operator on `rows` rows.
    pub fn total_cost(&self, rows: u64, pricing: &Pricing) -> f64 {
        rows as f64 * self.per_row_cost(pricing)
    }

    /// Ordering key for sequenced filters: `per_row_cost / (1 − selectivity)`,
    /// ascending. A selectivity of 1 (passes everything) ranks last via a
    /// tiny-denominator clamp rather than a division by zero.
    pub fn rank(&self, pricing: &Pricing) -> f64 {
        if llmqo_obs::enabled() {
            llmqo_obs::registry()
                .counter("costmodel.rank_evaluations")
                .inc();
        }
        self.per_row_cost(pricing) / (1.0 - self.selectivity).max(1e-9)
    }

    /// The same estimate with its selectivity replaced by an observed (or
    /// posterior) value — how the adaptive executor re-prices an operator
    /// mid-query without re-estimating its token costs.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity.clamp(0.0, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_clamped() {
        assert_eq!(LlmOpEstimate::new(1.0, 1.0, 7.0).selectivity, 1.0);
        assert_eq!(LlmOpEstimate::new(1.0, 1.0, -1.0).selectivity, 0.0);
    }

    #[test]
    fn per_row_cost_prices_both_directions() {
        let p = Pricing::gpt4o_mini();
        let e = LlmOpEstimate::new(1_000_000.0, 1_000_000.0, 0.5);
        // 1M input at $0.15 + 1M output at $0.60.
        assert!((e.per_row_cost(&p) - 0.75).abs() < 1e-9);
        assert!((e.total_cost(4, &p) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rank_orders_by_exchange_argument() {
        // Verify the rank rule against the two-filter expected-cost formula
        // on a grid of costs and selectivities.
        let p = Pricing::claude35_sonnet();
        let grid = [
            (50.0, 2.0, 0.1),
            (50.0, 2.0, 0.9),
            (400.0, 30.0, 0.3),
            (400.0, 30.0, 0.7),
            (1200.0, 5.0, 0.5),
        ];
        for &(pa, oa, sa) in &grid {
            for &(pb, ob, sb) in &grid {
                let a = LlmOpEstimate::new(pa, oa, sa);
                let b = LlmOpEstimate::new(pb, ob, sb);
                let (ca, cb) = (a.per_row_cost(&p), b.per_row_cost(&p));
                let ab = ca + sa * cb;
                let ba = cb + sb * ca;
                if a.rank(&p) < b.rank(&p) {
                    assert!(ab <= ba + 1e-12, "rank said a-first but {ab} > {ba}");
                }
                if b.rank(&p) < a.rank(&p) {
                    assert!(ba <= ab + 1e-12, "rank said b-first but {ba} > {ab}");
                }
            }
        }
    }

    #[test]
    fn posterior_starts_at_prior_and_converges_to_observations() {
        let mut p = SelectivityPosterior::new(0.5, 8.0);
        assert!((p.mean() - 0.5).abs() < 1e-12);
        assert_eq!(p.observations(), 0);
        // A small batch moves the mean part-way: 8 pseudo + 10 real.
        p.observe(1, 10);
        let after_small = p.mean();
        assert!(after_small < 0.5 && after_small > 0.1, "{after_small}");
        // A large batch dominates the prior.
        p.observe(99, 990);
        assert!((p.mean() - 0.1).abs() < 0.01, "{}", p.mean());
        assert_eq!(p.observations(), 1000);
    }

    #[test]
    fn posterior_clamps_degenerate_inputs() {
        let p = SelectivityPosterior::new(7.0, -3.0);
        assert!((p.mean() - 1.0).abs() < 1e-9);
        let mut z = SelectivityPosterior::new(0.0, 4.0);
        z.observe(0, 0); // empty batches are no-ops
        assert_eq!(z.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot pass more rows")]
    fn posterior_rejects_passed_above_total() {
        SelectivityPosterior::new(0.5, 1.0).observe(3, 2);
    }

    #[test]
    fn with_selectivity_replaces_only_selectivity() {
        let e = LlmOpEstimate::new(100.0, 2.0, 0.5).with_selectivity(0.05);
        assert_eq!(e.selectivity, 0.05);
        assert_eq!(e.prompt_tokens_per_row, 100.0);
        let p = Pricing::gpt4o_mini();
        assert!(e.rank(&p) < LlmOpEstimate::new(100.0, 2.0, 0.5).rank(&p));
        assert_eq!(e.with_selectivity(9.0).selectivity, 1.0);
    }

    #[test]
    fn pass_everything_filter_ranks_last() {
        let p = Pricing::gpt4o_mini();
        let always = LlmOpEstimate::new(10.0, 1.0, 1.0);
        let usually = LlmOpEstimate::new(10_000.0, 500.0, 0.99);
        assert!(always.rank(&p) > usually.rank(&p));
        assert!(always.rank(&p).is_finite());
    }
}
