//! Provider-side prompt cache simulators.
//!
//! These model how OpenAI and Anthropic decide which input tokens bill at
//! cached rates, given a *stream* of requests (order matters — that is the
//! whole point of request reordering). They are independent of the local
//! serving simulator: here the cache lives on the provider's side and we
//! only observe billing.

use crate::pricing::Usage;
use std::collections::HashSet;

/// A provider cache processing one request at a time, in order.
pub trait ProviderCache {
    /// Accounts one request: a prompt token sequence and its output length.
    fn process(&mut self, prompt: &[u32], output_tokens: u64) -> Usage;
}

/// OpenAI automatic prefix caching: the longest previously seen prefix of at
/// least `min_prefix` tokens, extending in `granularity` steps, bills at the
/// cached rate. No write premium; every request's own prefixes become
/// cacheable for subsequent requests.
#[derive(Debug, Clone)]
pub struct OpenAiCache {
    min_prefix: usize,
    granularity: usize,
    prefixes: HashSet<u64>,
}

impl Default for OpenAiCache {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenAiCache {
    /// Creates the cache with OpenAI's published rules (1 024 / 128).
    pub fn new() -> Self {
        OpenAiCache {
            min_prefix: 1024,
            granularity: 128,
            prefixes: HashSet::new(),
        }
    }

    /// Creates a cache with custom qualification rules (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero.
    pub fn with_rules(min_prefix: usize, granularity: usize) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        OpenAiCache {
            min_prefix,
            granularity,
            prefixes: HashSet::new(),
        }
    }

    /// Qualifying prefix lengths for a prompt of `len` tokens.
    fn boundaries(&self, len: usize) -> impl Iterator<Item = usize> + '_ {
        let min = self.min_prefix;
        let g = self.granularity;
        (0..)
            .map(move |i| min + i * g)
            .take_while(move |&b| b <= len)
    }
}

impl ProviderCache for OpenAiCache {
    fn process(&mut self, prompt: &[u32], output_tokens: u64) -> Usage {
        // Longest qualifying cached prefix.
        let mut cached = 0usize;
        for b in self.boundaries(prompt.len()) {
            if self.prefixes.contains(&prefix_hash(&prompt[..b])) {
                cached = b;
            }
            // Prefix hashes are chained, but a longer prefix may exist even
            // if a shorter boundary is absent only when insertion skipped
            // it; we insert all boundaries, so monotone scanning is exact.
        }
        // Register this prompt's qualifying prefixes for later requests.
        let boundaries: Vec<usize> = self.boundaries(prompt.len()).collect();
        for b in boundaries {
            self.prefixes.insert(prefix_hash(&prompt[..b]));
        }
        Usage {
            uncached_input: (prompt.len() - cached) as u64,
            cached_input: cached as u64,
            cache_write: 0,
            output: output_tokens,
        }
    }
}

/// Anthropic explicit-breakpoint caching under the paper's conservative
/// policy (§6.3): only the first `breakpoint` tokens of each request are
/// marked for caching. A marked prefix seen before bills at the read rate;
/// otherwise it is written at the 1.25× rate. Prompts shorter than the
/// breakpoint cannot use the cache at all.
#[derive(Debug, Clone)]
pub struct AnthropicCache {
    breakpoint: usize,
    entries: HashSet<u64>,
}

impl Default for AnthropicCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AnthropicCache {
    /// Creates the cache with the paper's 1 024-token breakpoint policy.
    pub fn new() -> Self {
        AnthropicCache {
            breakpoint: 1024,
            entries: HashSet::new(),
        }
    }

    /// Creates a cache with a custom breakpoint (for ablations).
    pub fn with_breakpoint(breakpoint: usize) -> Self {
        AnthropicCache {
            breakpoint,
            entries: HashSet::new(),
        }
    }
}

impl ProviderCache for AnthropicCache {
    fn process(&mut self, prompt: &[u32], output_tokens: u64) -> Usage {
        if prompt.len() < self.breakpoint {
            return Usage {
                uncached_input: prompt.len() as u64,
                cached_input: 0,
                cache_write: 0,
                output: output_tokens,
            };
        }
        let rest = (prompt.len() - self.breakpoint) as u64;
        let h = prefix_hash(&prompt[..self.breakpoint]);
        if self.entries.contains(&h) {
            Usage {
                uncached_input: rest,
                cached_input: self.breakpoint as u64,
                cache_write: 0,
                output: output_tokens,
            }
        } else {
            self.entries.insert(h);
            Usage {
                uncached_input: rest,
                cached_input: 0,
                cache_write: self.breakpoint as u64,
                output: output_tokens,
            }
        }
    }
}

fn prefix_hash(tokens: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for b in t.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Pricing;

    fn prompt(shared: usize, unique_tag: u32, total: usize) -> Vec<u32> {
        let mut p: Vec<u32> = (0..shared as u32).collect();
        p.extend((0..(total - shared) as u32).map(|i| 1_000_000 + unique_tag * 10_000 + i));
        p
    }

    #[test]
    fn openai_below_min_prefix_never_caches() {
        let mut c = OpenAiCache::new();
        let p = prompt(512, 0, 900);
        let a = c.process(&p, 1);
        let b = c.process(&p, 1);
        assert_eq!(a.cached_input, 0);
        assert_eq!(b.cached_input, 0, "900 < 1024 minimum");
    }

    #[test]
    fn openai_identical_prompts_cache_in_128_steps() {
        let mut c = OpenAiCache::new();
        let p = prompt(1500, 0, 1500);
        let a = c.process(&p, 1);
        assert_eq!(a.cached_input, 0);
        let b = c.process(&p, 1);
        // Longest qualifying boundary ≤ 1500 is 1024 + 3·128 = 1408.
        assert_eq!(b.cached_input, 1408);
        assert_eq!(b.uncached_input, 1500 - 1408);
    }

    #[test]
    fn openai_partial_shared_prefix() {
        let mut c = OpenAiCache::new();
        let a = prompt(1200, 1, 2000);
        let b = prompt(1200, 2, 2000); // shares first 1200 tokens with a
        c.process(&a, 1);
        let u = c.process(&b, 1);
        // Boundaries at 1024 and 1152 qualify; 1280 differs.
        assert_eq!(u.cached_input, 1152);
    }

    #[test]
    fn openai_no_write_premium() {
        let mut c = OpenAiCache::new();
        let u = c.process(&prompt(1100, 0, 1100), 5);
        assert_eq!(u.cache_write, 0);
        assert_eq!(u.output, 5);
    }

    #[test]
    fn anthropic_writes_then_reads() {
        let mut c = AnthropicCache::new();
        let p = prompt(1500, 0, 1500);
        let a = c.process(&p, 2);
        assert_eq!(a.cache_write, 1024);
        assert_eq!(a.cached_input, 0);
        assert_eq!(a.uncached_input, 1500 - 1024);
        let b = c.process(&p, 2);
        assert_eq!(b.cached_input, 1024);
        assert_eq!(b.cache_write, 0);
    }

    #[test]
    fn anthropic_short_prompts_bypass_cache() {
        let mut c = AnthropicCache::new();
        let p = prompt(500, 0, 500);
        let a = c.process(&p, 1);
        let b = c.process(&p, 1);
        assert_eq!(a.cache_write, 0);
        assert_eq!(b.cached_input, 0);
    }

    #[test]
    fn anthropic_divergence_after_breakpoint_still_reads() {
        let mut c = AnthropicCache::new();
        let a = prompt(1024, 1, 1600);
        let b = prompt(1024, 2, 1600); // same first 1024, different tail
        c.process(&a, 1);
        let u = c.process(&b, 1);
        assert_eq!(u.cached_input, 1024);
        assert_eq!(u.uncached_input, 576);
    }

    #[test]
    fn anthropic_divergence_before_breakpoint_rewrites() {
        let mut c = AnthropicCache::new();
        let a = prompt(512, 1, 1600); // unique from token 512
        let b = prompt(512, 2, 1600);
        c.process(&a, 1);
        let u = c.process(&b, 1);
        assert_eq!(u.cached_input, 0);
        assert_eq!(u.cache_write, 1024, "different 1024-prefix → new entry");
    }

    #[test]
    fn reordering_identical_prefixes_together_cuts_cost() {
        // Two interleaved prompt families vs grouped: same multiset, the
        // provider cache does not care about order for identical prompts,
        // but for OpenAI the *first* occurrence always misses — grouping
        // changes nothing there. The savings come from higher prefix overlap
        // (simulated here by family-shared prefixes), so grouped==interleaved
        // for exact-duplicate prompts:
        let fam_a = prompt(1408, 7, 1600);
        let fam_b = prompt(1408, 8, 1600);
        let pricing = Pricing::gpt4o_mini();

        let mut inter = OpenAiCache::new();
        let mut inter_usage = Usage::default();
        for p in [&fam_a, &fam_b, &fam_a, &fam_b] {
            inter_usage.add(inter.process(p, 1));
        }
        let mut grouped = OpenAiCache::new();
        let mut grouped_usage = Usage::default();
        for p in [&fam_a, &fam_a, &fam_b, &fam_b] {
            grouped_usage.add(grouped.process(p, 1));
        }
        // The provider cache persists across the batch, so both orders cost
        // the same for exact duplicates …
        assert!((grouped_usage.cost(&pricing) - inter_usage.cost(&pricing)).abs() < 1e-12);
        // … and both are cheaper than no duplicates at all.
        let mut cold = OpenAiCache::new();
        let mut cold_usage = Usage::default();
        for tag in 0..4 {
            cold_usage.add(cold.process(&prompt(1408, 100 + tag, 1600), 1));
        }
        assert!(grouped_usage.cost(&pricing) < cold_usage.cost(&pricing));
    }

    #[test]
    fn openai_custom_rules() {
        let mut c = OpenAiCache::with_rules(8, 4);
        let p: Vec<u32> = (0..10).collect();
        c.process(&p, 0);
        let u = c.process(&p, 0);
        assert_eq!(u.cached_input, 8);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_panics() {
        let _ = OpenAiCache::with_rules(8, 0);
    }
}
