//! Model-tier cascades: price a cheap-model-first, escalate-on-low-confidence
//! execution plan for one LLM operator.
//!
//! The paper's optimizer decides *which order* LLM operators run in; the
//! cascade extends the cost model to decide *which model* each row runs on.
//! A [`CascadePlan`] pairs a cheap [`ModelTier`] with an expensive one: every
//! row is first answered by the cheap tier, and rows whose deterministic
//! per-row confidence falls below `escalate_below` are re-run on the
//! expensive tier (whose answer then wins). The expected per-row cost is
//!
//! ```text
//! cheap_cost + escalation_rate × expensive_cost
//! ```
//!
//! which undercuts the single-expensive-tier cost whenever the escalation
//! rate is below `1 − cheap_cost / expensive_cost`.
//!
//! Everything here is a pure function of `(seed, row)` — the same
//! counter-based SplitMix64 scheme as `llmqo-serve`'s `fault_unit` — so a
//! cascade run reproduces byte for byte regardless of dedup, caching,
//! batching, or pipelining, and the differential suites can construct exact
//! single-tier oracles for both endpoints of the threshold:
//! `escalate_below ≥ 1` is the expensive tier verbatim, `escalate_below ≤ 0`
//! is the cheap tier verbatim.
//!
//! [`TierPosterior`] extends the Beta–Bernoulli [`SelectivityPosterior`]
//! machinery to the two rates a cascade must learn online: how often rows
//! escalate, and how often the cheap tier agrees with the expensive one when
//! they do.

use crate::operator::SelectivityPosterior;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — identical constants to `llmqo_serve::fault_unit`'s
/// generator so the serving layer's confidence signal and the cost model's
/// cascade draws agree bit for bit (locked by a cross-crate test).
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic uniform draw in `[0, 1)` keyed by `(seed, stream, draw)`.
fn unit(seed: u64, stream: u64, draw: u64) -> f64 {
    let z = mix64(seed ^ mix64(stream).wrapping_add(mix64(draw.wrapping_add(0x51ed_2701))));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Draw counter reserved for the per-row confidence signal. Matches
/// `llmqo_serve::CONFIDENCE_DRAW`; fault-injection attempt counters stay in
/// the low integers, so the streams can never collide.
pub const CONFIDENCE_DRAW: u64 = 0xC0FD;

/// Draw counter reserved for the cheap tier's answer correctness roll.
const ANSWER_DRAW: u64 = 0xC0FE;

/// One model tier of a cascade: its token pricing and how often it agrees
/// with the expensive (reference) tier when maximally uncertain.
///
/// `base_accuracy` is the probability the tier's answer matches the
/// reference tier at confidence 0; agreement rises linearly to 1 as
/// confidence approaches 1, so low-confidence rows are exactly the ones
/// worth escalating. The expensive tier of a plan is the reference — its
/// answers *define* correctness, so its own `base_accuracy` is 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelTier {
    /// $ per 1M input tokens.
    pub input_per_mtok: f64,
    /// $ per 1M output tokens.
    pub output_per_mtok: f64,
    /// Agreement probability with the reference tier at confidence 0,
    /// clamped to `[0, 1]`.
    pub base_accuracy: f64,
}

impl ModelTier {
    /// Creates a tier, clamping `base_accuracy` into `[0, 1]`.
    pub fn new(input_per_mtok: f64, output_per_mtok: f64, base_accuracy: f64) -> Self {
        ModelTier {
            input_per_mtok,
            output_per_mtok,
            base_accuracy: base_accuracy.clamp(0.0, 1.0),
        }
    }

    /// The cheap tier the paper benchmarks against: GPT-4o-mini pricing
    /// ($0.15/M input, $0.60/M output) with an 88% base agreement rate.
    pub fn mini() -> Self {
        ModelTier::new(0.15, 0.60, 0.88)
    }

    /// The expensive reference tier: Claude 3.5 Sonnet pricing ($3/M input,
    /// $15/M output). As the reference its answers define ground truth.
    pub fn sonnet() -> Self {
        ModelTier::new(3.0, 15.0, 1.0)
    }

    /// Dollar cost of one request against this tier.
    pub fn cost(&self, prompt_tokens: f64, output_tokens: f64) -> f64 {
        (prompt_tokens * self.input_per_mtok + output_tokens * self.output_per_mtok) / 1e6
    }
}

/// A two-tier cascade plan for one LLM operator: run every row on `cheap`,
/// escalate rows whose confidence falls below `escalate_below` to
/// `expensive`.
///
/// All stochastic behaviour is a pure function of `(seed, row)`:
/// [`confidence`](CascadePlan::confidence) and
/// [`cheap_label`](CascadePlan::cheap_label) never consult execution state,
/// so dedup, answer caching, batching, and pipelining cannot change which
/// rows escalate or what the cheap tier answers.
///
/// # Examples
///
/// ```
/// use llmqo_costmodel::{CascadePlan, ModelTier};
///
/// let plan = CascadePlan::new(ModelTier::mini(), ModelTier::sonnet(), 0.3, 42);
/// // The two threshold endpoints degenerate to single tiers.
/// assert!(CascadePlan { escalate_below: 1.0, ..plan }.is_escalate_all());
/// assert!(CascadePlan { escalate_below: 0.0, ..plan }.is_never_escalate());
/// // Escalation is deterministic per row.
/// assert_eq!(plan.escalates(7), plan.escalates(7));
/// // Cascade beats the single expensive tier while escalation is rare.
/// let single = plan.expensive.cost(200.0, 4.0);
/// assert!(plan.expected_per_row_cost(200.0, 4.0, 0.3) < single);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadePlan {
    /// The tier every row runs on first.
    pub cheap: ModelTier,
    /// The reference tier low-confidence rows escalate to.
    pub expensive: ModelTier,
    /// Escalation threshold: rows with `confidence < escalate_below`
    /// escalate. Confidence lives in `[0, 1)`, so `1.0` escalates every row
    /// and `0.0` escalates none.
    pub escalate_below: f64,
    /// Seed for the per-row confidence and answer draws.
    pub seed: u64,
}

impl CascadePlan {
    /// Creates a plan, clamping `escalate_below` into `[0, 1]`.
    pub fn new(cheap: ModelTier, expensive: ModelTier, escalate_below: f64, seed: u64) -> Self {
        CascadePlan {
            cheap,
            expensive,
            escalate_below: escalate_below.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The default mini → sonnet cascade at threshold `escalate_below`.
    pub fn mini_to_sonnet(escalate_below: f64, seed: u64) -> Self {
        CascadePlan::new(ModelTier::mini(), ModelTier::sonnet(), escalate_below, seed)
    }

    /// The cheap tier's deterministic confidence in its answer for `row`,
    /// uniform in `[0, 1)`. Equals `llmqo_serve::confidence_unit(seed, row)`.
    pub fn confidence(&self, row: u64) -> f64 {
        unit(self.seed, row, CONFIDENCE_DRAW)
    }

    /// Whether `row` escalates to the expensive tier.
    pub fn escalates(&self, row: u64) -> bool {
        self.confidence(row) < self.escalate_below
    }

    /// `true` when every row escalates — the plan degenerates to the single
    /// expensive tier (the differential oracle's byte-for-byte endpoint).
    pub fn is_escalate_all(&self) -> bool {
        self.escalate_below >= 1.0
    }

    /// `true` when no row escalates — the plan degenerates to the single
    /// cheap tier.
    pub fn is_never_escalate(&self) -> bool {
        self.escalate_below <= 0.0
    }

    /// The cheap tier's answer for `row`, given the reference (expensive)
    /// tier's answer.
    ///
    /// The answer is correct with probability
    /// `base_accuracy + (1 − base_accuracy) × confidence` — low-confidence
    /// rows are exactly the error-prone ones, so raising the escalation
    /// threshold buys accuracy. A wrong answer is the cyclically next label
    /// in `label_space`; operators without a discrete label space (free-text
    /// projections) are modelled as tier-insensitive and pass through.
    pub fn cheap_label(&self, row: u64, reference: &str, label_space: &[String]) -> String {
        let p_correct =
            self.cheap.base_accuracy + (1.0 - self.cheap.base_accuracy) * self.confidence(row);
        if unit(self.seed, row, ANSWER_DRAW) < p_correct {
            return reference.to_owned();
        }
        if label_space.len() >= 2 {
            if let Some(pos) = label_space.iter().position(|l| l == reference) {
                return label_space[(pos + 1) % label_space.len()].clone();
            }
        }
        reference.to_owned()
    }

    /// The label the cascade emits for `row`: the reference answer when the
    /// row escalates, the cheap tier's answer otherwise.
    pub fn label(&self, row: u64, reference: &str, label_space: &[String]) -> String {
        if self.escalates(row) {
            reference.to_owned()
        } else {
            self.cheap_label(row, reference, label_space)
        }
    }

    /// Expected dollar cost per row at an assumed `escalation_rate`: every
    /// row pays the cheap tier, escalated rows additionally pay the
    /// expensive tier.
    pub fn expected_per_row_cost(
        &self,
        prompt_tokens: f64,
        output_tokens: f64,
        escalation_rate: f64,
    ) -> f64 {
        self.cheap.cost(prompt_tokens, output_tokens)
            + escalation_rate.clamp(0.0, 1.0) * self.expensive.cost(prompt_tokens, output_tokens)
    }

    /// Dollar cost per row of skipping the cascade and running the expensive
    /// tier alone — what the optimizer compares
    /// [`expected_per_row_cost`](CascadePlan::expected_per_row_cost) against.
    pub fn single_tier_per_row_cost(&self, prompt_tokens: f64, output_tokens: f64) -> f64 {
        self.expensive.cost(prompt_tokens, output_tokens)
    }
}

/// Beta posteriors for the two rates a cascade learns online: the escalation
/// rate (what fraction of rows fall below the threshold) and the agreement
/// rate (how often the cheap tier matched the expensive tier on escalated
/// rows, where both answers are known).
///
/// Both update with the same smooth prior-to-observations hand-off as
/// [`SelectivityPosterior`], which this type is built from.
///
/// # Examples
///
/// ```
/// use llmqo_costmodel::TierPosterior;
///
/// let mut post = TierPosterior::new(0.5, 0.9, 8.0);
/// assert_eq!(post.escalation_rate(), 0.5);
/// // 100 rows: 20 escalated, and the cheap tier agreed on 18 of them.
/// post.observe(20, 100, 18);
/// assert!(post.escalation_rate() < 0.3);
/// assert!(post.agreement_rate() > 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierPosterior {
    escalation: SelectivityPosterior,
    agreement: SelectivityPosterior,
}

impl TierPosterior {
    /// Creates a posterior around prior escalation and agreement rates,
    /// each weighted as `strength` pseudo-observations.
    pub fn new(escalation_prior: f64, agreement_prior: f64, strength: f64) -> Self {
        TierPosterior {
            escalation: SelectivityPosterior::new(escalation_prior, strength),
            agreement: SelectivityPosterior::new(agreement_prior, strength),
        }
    }

    /// Folds in one batch: `escalated` of `total` rows crossed the
    /// threshold, and the cheap tier agreed with the expensive tier on
    /// `agreed` of the escalated ones.
    ///
    /// # Panics
    ///
    /// Panics if `escalated > total` or `agreed > escalated`.
    pub fn observe(&mut self, escalated: u64, total: u64, agreed: u64) {
        assert!(
            agreed <= escalated,
            "cannot agree on more rows than escalated"
        );
        self.escalation.observe(escalated, total);
        self.agreement.observe(agreed, escalated);
    }

    /// Posterior mean escalation rate.
    pub fn escalation_rate(&self) -> f64 {
        self.escalation.mean()
    }

    /// Posterior mean cheap-vs-expensive agreement rate on escalated rows.
    pub fn agreement_rate(&self) -> f64 {
        self.agreement.mean()
    }

    /// Rows observed so far (0 means both means are still pure priors).
    pub fn observations(&self) -> u64 {
        self.escalation.observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<String> {
        vec!["Yes".to_owned(), "No".to_owned()]
    }

    #[test]
    fn confidence_is_deterministic_uniform() {
        let plan = CascadePlan::mini_to_sonnet(0.3, 9);
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|r| plan.confidence(r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for r in 0..64 {
            assert_eq!(plan.confidence(r), plan.confidence(r));
            assert!((0.0..1.0).contains(&plan.confidence(r)));
        }
    }

    #[test]
    fn escalation_rate_tracks_threshold() {
        for &t in &[0.1, 0.3, 0.7] {
            let plan = CascadePlan::mini_to_sonnet(t, 5);
            let n = 10_000u64;
            let esc = (0..n).filter(|&r| plan.escalates(r)).count() as f64 / n as f64;
            assert!((esc - t).abs() < 0.02, "threshold {t} escalated {esc}");
        }
    }

    #[test]
    fn endpoints_degenerate_to_single_tiers() {
        let all = CascadePlan::mini_to_sonnet(1.0, 1);
        let none = CascadePlan::mini_to_sonnet(0.0, 1);
        assert!(all.is_escalate_all() && !all.is_never_escalate());
        assert!(none.is_never_escalate() && !none.is_escalate_all());
        for r in 0..256 {
            assert!(all.escalates(r));
            assert!(!none.escalates(r));
            assert_eq!(all.label(r, "Yes", &labels()), "Yes");
            assert_eq!(
                none.label(r, "Yes", &labels()),
                none.cheap_label(r, "Yes", &labels())
            );
        }
    }

    #[test]
    fn threshold_is_clamped() {
        assert_eq!(CascadePlan::mini_to_sonnet(7.0, 0).escalate_below, 1.0);
        assert_eq!(CascadePlan::mini_to_sonnet(-1.0, 0).escalate_below, 0.0);
        assert_eq!(ModelTier::new(1.0, 1.0, 3.0).base_accuracy, 1.0);
    }

    #[test]
    fn cheap_label_errors_are_rare_and_in_label_space() {
        let plan = CascadePlan::mini_to_sonnet(0.0, 3);
        let space = labels();
        let n = 10_000u64;
        let wrong = (0..n)
            .filter(|&r| plan.cheap_label(r, "Yes", &space) != "Yes")
            .count() as f64
            / n as f64;
        // base_accuracy 0.88, averaged over uniform confidence: the error
        // rate is (1 − 0.88) × E[1 − conf] = 0.06.
        assert!((wrong - 0.06).abs() < 0.01, "error rate {wrong}");
        for r in 0..256 {
            let l = plan.cheap_label(r, "Yes", &space);
            assert!(space.contains(&l), "{l} not in label space");
        }
    }

    #[test]
    fn raising_the_threshold_monotonically_reduces_errors() {
        let space = labels();
        let n = 5_000u64;
        let errors = |t: f64| {
            let plan = CascadePlan::mini_to_sonnet(t, 11);
            (0..n)
                .filter(|&r| plan.label(r, "No", &space) != "No")
                .count()
        };
        let (e0, e5, e10) = (errors(0.0), errors(0.5), errors(1.0));
        assert!(e0 > e5, "{e0} vs {e5}");
        assert!(e5 > e10, "{e5} vs {e10}");
        assert_eq!(e10, 0);
    }

    #[test]
    fn free_text_operators_are_tier_insensitive() {
        let plan = CascadePlan::mini_to_sonnet(0.0, 3);
        for r in 0..256 {
            assert_eq!(plan.cheap_label(r, "a summary", &[]), "a summary");
        }
    }

    #[test]
    fn expected_cost_interpolates_between_tiers() {
        let plan = CascadePlan::mini_to_sonnet(0.3, 0);
        let cheap = plan.cheap.cost(300.0, 5.0);
        let single = plan.single_tier_per_row_cost(300.0, 5.0);
        assert!((plan.expected_per_row_cost(300.0, 5.0, 0.0) - cheap).abs() < 1e-12);
        let all = plan.expected_per_row_cost(300.0, 5.0, 1.0);
        assert!((all - (cheap + single)).abs() < 1e-12);
        assert!(plan.expected_per_row_cost(300.0, 5.0, 0.3) < single);
    }

    #[test]
    fn tier_posterior_converges_and_validates() {
        let mut p = TierPosterior::new(0.5, 0.5, 8.0);
        assert_eq!(p.observations(), 0);
        p.observe(200, 1000, 190);
        assert!((p.escalation_rate() - 0.2).abs() < 0.01);
        assert!(p.agreement_rate() > 0.9);
        assert_eq!(p.observations(), 1000);
    }

    #[test]
    #[should_panic(expected = "cannot agree on more rows")]
    fn tier_posterior_rejects_agreed_above_escalated() {
        TierPosterior::new(0.5, 0.5, 1.0).observe(2, 10, 3);
    }
}
