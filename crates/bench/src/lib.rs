//! # llmqo-bench — reproduction harness for every table and figure
//!
//! One binary per paper artifact (run with
//! `cargo run --release -p llmqo-bench --bin <id>`):
//!
//! | bin | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — dataset statistics |
//! | `fig1` | Figure 1 — fixed-field-ordering case study |
//! | `fig3a` | Figure 3a — filter query end-to-end runtimes |
//! | `fig3b` | Figure 3b — projection + RAG runtimes |
//! | `fig4` | Figure 4 — multi-LLM invocation + aggregation |
//! | `fig5` | Figure 5 — Llama-3-70B filter runtimes |
//! | `fig6` | Figure 6 — accuracy under reordering (bootstrap) |
//! | `table2` | Table 2 — prefix hit rates |
//! | `table3` | Table 3 — OpenAI/Anthropic measured costs |
//! | `table4` | Table 4 — estimated cost savings |
//! | `table5` | Table 5 — GGR solver time |
//! | `table6` | Table 6 — GGR vs OPHR (Appendix D.1) |
//! | `table7` | Table 7 — Llama-3.2-1B (Appendix D.2) |
//! | `table_sqlopt` | SQL-aware optimizations — dedup / reorder / lazy `LIMIT` savings |
//!
//! Set `LLMQO_SCALE` (e.g. `0.1`) to run on proportionally smaller datasets
//! while keeping duplication structure; default is the paper's full sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
