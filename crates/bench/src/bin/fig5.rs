//! Reproduces **Figure 5**: the five filter queries on Llama-3-70B served
//! over 8×L4 with tensor parallelism, Cache (Original) vs Cache (GGR).
//!
//! Paper headline: GGR is 1.9–3.3× faster; trends mirror the 8B results.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_70b();
    let mut rows = Vec::new();
    for id in [
        DatasetId::Movies,
        DatasetId::Products,
        DatasetId::Bird,
        DatasetId::Pdmx,
        DatasetId::Beer,
    ] {
        let ds = harness::load(id);
        let query = ds.query_of_kind(QueryKind::Filter).expect("T1 exists");
        let orig = harness::run_method(&ds, query, harness::Method::CacheOriginal, &deployment)
            .expect("run");
        let ggr =
            harness::run_method(&ds, query, harness::Method::CacheGgr, &deployment).expect("run");
        rows.push(vec![
            id.name().to_owned(),
            report::secs(orig.report.engine.job_completion_time_s),
            report::secs(ggr.report.engine.job_completion_time_s),
            report::speedup(
                orig.report.engine.job_completion_time_s,
                ggr.report.engine.job_completion_time_s,
            ),
            report::pct(ggr.report.engine.prefix_hit_rate()),
        ]);
    }
    report::section(
        "Fig 5: Filter queries, Llama-3-70B on 8xL4 (paper: GGR 1.9-3.3x over \
         Cache (Original))",
        &[
            "Dataset",
            "Cache (Original)",
            "Cache (GGR)",
            "GGR vs Original",
            "GGR PHR",
        ],
        &rows,
    );
}
