//! **Chaos sweep**: goodput and tail queue-wait of an 8-replica cluster
//! under injected faults, across the retry-policy ladder and a
//! prefix-affine vs prefix-blind router. Writes `BENCH_chaos.json`.
//!
//! The grid is {no-fault, 1-crash, 10%-transient-errors, 1-straggler} ×
//! {retry off, retry+backoff, retry+hedging} × {prefix-affinity,
//! round-robin} on a synthetic grouped shared-prefix workload. Every cell
//! asserts the zero-loss ledger `succeeded + failed == offered`, the
//! no-fault/no-retry cell is verified byte-identical to the fault-free
//! dispatcher, and the run fails if prefix-affinity ever loses its
//! prefix-hit-rate advantage over round-robin while faults are active —
//! the failover path must preserve locality, not just liveness.
//!
//! ```sh
//! LLMQO_SCALE=0.2 cargo run --release -p llmqo-bench --bin perf_chaos
//! ```

use llmqo_bench::harness;
use llmqo_cluster::{
    ArrivalProcess, ClusterConfig, ClusterReport, ClusterRequest, ClusterSim, FaultPlan,
    PrefixAffinity, RetryPolicy, RoundRobin, Router,
};
use llmqo_serve::{EngineConfig, SimEngine, SimRequest};

const REPLICAS: usize = 8;
const QUEUE_CAP: usize = 16;

/// Grouped shared-prefix workload: `groups` prefix groups of `per_group`
/// requests each — the shape the reordering solver hands the cluster, and
/// the one where routing policy decides whether prefixes stay cached.
fn workload(groups: usize, per_group: usize) -> Vec<ClusterRequest> {
    let mut requests: Vec<ClusterRequest> = (0..groups * per_group)
        .map(|i| {
            let g = (i / per_group) as u32;
            let mut toks: Vec<u32> = (0..64).map(|j| g * 1000 + j).collect();
            toks.extend((0..16).map(|j| 500_000 + i as u32 * 64 + j));
            ClusterRequest::new(SimRequest::from_tokens(i, toks, 4), u64::from(g))
        })
        .collect();
    ArrivalProcess::Poisson {
        rate_rps: 400.0,
        seed: 17,
    }
    .assign(&mut requests);
    requests
}

fn sim() -> ClusterSim {
    ClusterSim::new(
        SimEngine::new(harness::deployment_8b(), EngineConfig::default()),
        ClusterConfig {
            replicas: REPLICAS,
            queue_cap: QUEUE_CAP,
        },
    )
}

struct Cell {
    fault: &'static str,
    retry: &'static str,
    report: ClusterReport,
}

fn json_escape_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let scale = harness::scale();
    let groups = ((24.0 * scale).round() as usize).max(8);
    let requests = workload(groups, 8);
    let sim = sim();

    // Probe run: the fault-free makespan anchors every fault instant so
    // the scenarios stay meaningful at any LLMQO_SCALE.
    let probe = sim
        .run(&mut PrefixAffinity::default(), &requests)
        .expect("probe run");
    let mk = probe.makespan_s;
    println!(
        "probe: {} requests over {groups} groups, 8 replicas, fault-free makespan {mk:.2}s",
        requests.len()
    );

    let faults: Vec<(&'static str, FaultPlan)> = vec![
        ("no-fault", FaultPlan::seeded(23)),
        (
            "1-crash",
            FaultPlan::seeded(23).crash_restart(0, 0.2 * mk, 0.6 * mk),
        ),
        (
            "10%-transient",
            FaultPlan::seeded(23).transient_errors_ppm(100_000),
        ),
        (
            "1-straggler",
            FaultPlan::seeded(23).slowdown(0, 0.1 * mk, 0.8 * mk, 4.0),
        ),
    ];
    let policies: Vec<(&'static str, RetryPolicy)> = vec![
        ("off", RetryPolicy::disabled()),
        ("backoff", RetryPolicy::retries(3)),
        (
            "backoff+hedge",
            // Hedge at roughly the fault-free tail: duplicates target only
            // requests genuinely stuck behind a fault, not the median.
            RetryPolicy::retries(3).with_hedging((0.9 * mk).max(0.05)),
        ),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (fault_name, plan) in &faults {
        for (retry_name, policy) in &policies {
            for router_is_affine in [true, false] {
                let mut router: Box<dyn Router> = if router_is_affine {
                    Box::new(PrefixAffinity::default())
                } else {
                    Box::new(RoundRobin)
                };
                let report = sim
                    .run_with_faults(router.as_mut(), &requests, plan, policy)
                    .expect("chaos run");
                if report.faults.engaged() {
                    let fs = &report.faults;
                    assert_eq!(
                        fs.succeeded + fs.failed,
                        fs.offered,
                        "{fault_name}/{retry_name}/{}: requests lost",
                        report.policy
                    );
                } else {
                    // The inert cell must be byte-identical to the
                    // fault-free dispatcher — the differential spine,
                    // re-proven on the bench workload itself.
                    let seed_run = sim.run(router.as_mut(), &requests).expect("seed run");
                    assert_eq!(
                        seed_run, report,
                        "inert chaos cell diverged from the fault-free path"
                    );
                }
                cells.push(Cell {
                    fault: fault_name,
                    retry: retry_name,
                    report,
                });
            }
        }
    }

    // Failover must preserve locality: whenever faults are active and
    // recovery is on, prefix-affinity's cluster-wide prefix hit rate must
    // stay strictly above round-robin's.
    for (fault_name, _) in &faults {
        for (retry_name, _) in &policies {
            let phr = |policy: &str| {
                cells
                    .iter()
                    .find(|c| {
                        c.fault == *fault_name
                            && c.retry == *retry_name
                            && c.report.policy == policy
                    })
                    .map(|c| c.report.prefix_hit_rate())
                    .expect("cell exists")
            };
            let affine = phr("prefix-affinity");
            let blind = phr("round-robin");
            assert!(
                affine > blind,
                "{fault_name}/{retry_name}: prefix-affinity PHR {:.1}% did not beat \
                 round-robin {:.1}% — failover lost the locality advantage",
                affine * 100.0,
                blind * 100.0
            );
        }
    }

    println!(
        "\n{:<14} {:<14} {:<16} {:>8} {:>10} {:>7} {:>6} {:>7} {:>7} {:>9}",
        "fault",
        "retry",
        "router",
        "goodput",
        "p99 wait",
        "PHR",
        "failed",
        "retries",
        "hedges",
        "failovers"
    );
    for c in &cells {
        let fs = &c.report.faults;
        println!(
            "{:<14} {:<14} {:<16} {:>8.1} {:>9.3}s {:>6.1}% {:>6} {:>7} {:>7} {:>9}",
            c.fault,
            c.retry,
            c.report.policy,
            c.report.goodput_rps(),
            c.report.queue_wait_p99_s,
            c.report.prefix_hit_rate() * 100.0,
            fs.failed,
            fs.retries,
            fs.hedges_issued,
            fs.failovers
        );
    }

    // BENCH_chaos.json: hand-rolled (the vendored serde has no JSON
    // serializer), one object per grid cell.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"chaos\",\n");
    json.push_str("  \"metric\": \"goodput (useful requests per second of makespan) and p99 admission queue wait under injected faults\",\n");
    json.push_str(&format!("  \"replicas\": {REPLICAS},\n"));
    json.push_str(&format!("  \"queue_cap\": {QUEUE_CAP},\n"));
    json.push_str(&format!("  \"requests\": {},\n", requests.len()));
    json.push_str(&format!("  \"prefix_groups\": {groups},\n"));
    json.push_str(&format!(
        "  \"fault_free_makespan_s\": {},\n",
        json_escape_num(mk)
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let fs = &c.report.faults;
        json.push_str(&format!(
            "    {{\"fault\": \"{}\", \"retry\": \"{}\", \"router\": \"{}\", \
             \"goodput_rps\": {}, \"queue_wait_p99_s\": {}, \"prefix_hit_rate\": {}, \
             \"makespan_s\": {}, \"offered\": {}, \"succeeded\": {}, \"failed\": {}, \
             \"retries\": {}, \"transient_errors\": {}, \"hedges_issued\": {}, \
             \"hedges_won\": {}, \"failovers\": {}, \"deadline_misses\": {}, \
             \"unavailable_s\": {}}}{}\n",
            c.fault,
            c.retry,
            c.report.policy,
            json_escape_num(c.report.goodput_rps()),
            json_escape_num(c.report.queue_wait_p99_s),
            json_escape_num(c.report.prefix_hit_rate()),
            json_escape_num(c.report.makespan_s),
            fs.offered,
            fs.succeeded,
            fs.failed,
            fs.retries,
            fs.transient_errors,
            fs.hedges_issued,
            fs.hedges_won,
            fs.failovers,
            fs.deadline_misses,
            json_escape_num(fs.unavailable_s),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    llmqo_obs::validate_json(&json).expect("BENCH_chaos.json is well-formed");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json ({} cells)", cells.len());
}
