//! Reproduces **Table 2**: prefix hit rate (PHR) of LLM filter and RAG
//! queries under the original ordering vs GGR, measured end-to-end in the
//! serving simulator (block-granular, including the shared instruction
//! prefix — exactly what vLLM's cache metrics report).

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_8b();
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let paper = id.paper();
        let ds = harness::load(id);
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .expect("every dataset has a T1 or T5 query");
        let orig = harness::run_method(&ds, query, harness::Method::CacheOriginal, &deployment)
            .expect("original run");
        let ggr = harness::run_method(&ds, query, harness::Method::CacheGgr, &deployment)
            .expect("ggr run");
        rows.push(vec![
            id.name().to_owned(),
            report::pct(orig.report.engine.prefix_hit_rate()),
            report::pct(paper.original_phr),
            report::pct(ggr.report.engine.prefix_hit_rate()),
            report::pct(paper.ggr_phr),
            report::pct(ggr.report.field_phc.hit_rate()),
        ]);
    }
    report::section(
        "Table 2: PHR of LLM filter and RAG queries",
        &[
            "Dataset",
            "Original",
            "Original(paper)",
            "GGR",
            "GGR(paper)",
            "GGR field-level",
        ],
        &rows,
    );
}
