//! Calibration diagnostics (not a paper artifact): per-dataset column
//! statistics and solver comparison, used to tune the synthetic generators
//! against Table 2 and to sanity-check GGR against its ceiling.

use llmqo_bench::{harness, report};
use llmqo_core::{
    phc_of_plan, FallbackOrdering, Ggr, GgrConfig, OriginalOrder, Reorderer, SortedFixed,
    StatFixed, TableStats,
};
use llmqo_datasets::DatasetId;
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_tokenizer::Tokenizer;

fn main() {
    let ids: Vec<DatasetId> = match std::env::args().nth(1).as_deref() {
        Some(name) => DatasetId::all()
            .into_iter()
            .filter(|d| d.name().eq_ignore_ascii_case(name))
            .collect(),
        None => DatasetId::all().to_vec(),
    };
    let tok = Tokenizer::new();
    for id in ids {
        let ds = harness::load(id);
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .unwrap();
        let encoded = encode_table(&tok, &ds.table, query).unwrap();
        let fds = project_fds(&ds.fds, &encoded.used_cols);
        let stats = TableStats::compute(&encoded.reorder);
        let n = encoded.reorder.nrows();

        let mut col_rows = Vec::new();
        for (c, s) in stats.columns().iter().enumerate() {
            col_rows.push(vec![
                encoded.reorder.column_names()[c].clone(),
                format!("{}", s.cardinality),
                format!("{:.1}", s.avg_len),
                format!("{:.0}", s.total_len as f64 / n as f64),
                format!("{:.2e}", s.hitcount_score(n)),
            ]);
        }
        report::section(
            &format!(
                "{} columns (n={}, instr={} tok, fields={:.0} tok/row)",
                id.name(),
                n,
                encoded.instruction.len(),
                encoded.reorder.total_tokens() as f64 / n as f64
            ),
            &["column", "card", "avg_len", "tok/row", "score"],
            &col_rows,
        );

        let solvers: Vec<(&str, Box<dyn Reorderer>)> = vec![
            ("original", Box::new(OriginalOrder)),
            ("sorted-fixed", Box::new(SortedFixed)),
            ("stat-fixed", Box::new(StatFixed)),
            ("ggr(paper)", Box::new(Ggr::default())),
            (
                "ggr(deep)",
                Box::new(Ggr::new(GgrConfig {
                    max_row_depth: Some(64),
                    max_col_depth: Some(8),
                    min_hitcount: None,
                    use_fds: true,
                    fallback: FallbackOrdering::StatFixed,
                })),
            ),
            (
                "ggr(nofd)",
                Box::new(Ggr::new(GgrConfig {
                    use_fds: false,
                    ..GgrConfig::paper()
                })),
            ),
        ];
        let mut rows = Vec::new();
        for (name, solver) in solvers {
            let start = std::time::Instant::now();
            let s = solver.reorder(&encoded.reorder, &fds).unwrap();
            let elapsed = start.elapsed().as_secs_f64();
            let r = phc_of_plan(&encoded.reorder, &s.plan);
            // Engine-equivalent rate including instruction prefix per row.
            let instr = (encoded.instruction.len() * n) as u64;
            let engine_like = (r.hit_tokens + instr - encoded.instruction.len() as u64) as f64
                / (r.total_tokens + instr) as f64;
            rows.push(vec![
                name.to_owned(),
                report::pct(r.hit_rate()),
                report::pct(engine_like),
                format!("{:.2e}", r.phc as f64),
                report::secs(elapsed),
            ]);
        }
        report::section(
            &format!("{} solvers", id.name()),
            &["solver", "field hit", "≈engine hit", "PHC", "solve"],
            &rows,
        );
    }
}
