//! **Overload sweep**: tail queue-wait and the shed/scale ledgers of a
//! 4-replica cluster fed at 2× its measured service rate, across the
//! protection ladder {unprotected, admission+shed, +tenant quota,
//! +autoscaler, +chaos}. Writes `BENCH_overload.json`.
//!
//! A mixed-priority workload (every 4th request is a priority-1 request of
//! the premium tenant) arrives as a Poisson process at twice the fleet's
//! fault-free throughput. The unprotected dispatcher accepts everything and
//! collapses into unbounded queue waits; each protected cell must (a)
//! reconcile its shed ledger exactly (`completed + shed == offered`
//! fault-free, `succeeded + failed + shed == offered` under chaos), (b)
//! shed **zero** priority-1 requests, and (c) keep p99 admission queue wait
//! under half the unprotected collapse. The inert-policy cell is verified
//! byte-identical to the ungated dispatcher — the differential spine,
//! re-proven on the bench workload itself. All assertions are in-binary:
//! a regression fails the bench, not just a plot.
//!
//! ```sh
//! LLMQO_SCALE=0.2 cargo run --release -p llmqo-bench --bin perf_overload
//! ```

use llmqo_bench::harness;
use llmqo_cluster::{
    AdmissionPolicy, ArrivalProcess, ClusterConfig, ClusterReport, ClusterRequest, ClusterSim,
    FaultPlan, OverloadPolicy, PrefixAffinity, RetryPolicy, ScalePolicy,
};
use llmqo_serve::{EngineConfig, SimEngine, SimRequest};

const REPLICAS: usize = 4;
const QUEUE_CAP: usize = 2;
/// Every 4th request is the premium tenant's priority-1 traffic (25%).
const PRIO_EVERY: usize = 4;

/// Grouped shared-prefix workload with a mixed-priority tenant split:
/// tenant 0 floods at priority 0, tenant 1 sends every
/// [`PRIO_EVERY`]-th request at priority 1.
fn workload(groups: usize, per_group: usize) -> Vec<ClusterRequest> {
    (0..groups * per_group)
        .map(|i| {
            let g = (i / per_group) as u32;
            let mut toks: Vec<u32> = (0..64).map(|j| g * 1000 + j).collect();
            toks.extend((0..16).map(|j| 500_000 + i as u32 * 64 + j));
            let r = ClusterRequest::new(SimRequest::from_tokens(i, toks, 4), u64::from(g));
            if i.is_multiple_of(PRIO_EVERY) {
                r.tenant(1).priority(1)
            } else {
                r
            }
        })
        .collect()
}

fn sim() -> ClusterSim {
    ClusterSim::new(
        SimEngine::new(harness::deployment_8b(), EngineConfig::default()),
        ClusterConfig {
            replicas: REPLICAS,
            queue_cap: QUEUE_CAP,
        },
    )
}

struct Cell {
    name: &'static str,
    report: ClusterReport,
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let scale = harness::scale();
    let groups = ((20.0 * scale).round() as usize).max(14);
    let sim = sim();

    // Probe run: measure the fleet's fault-free service rate on the bench
    // workload itself, then offer load at exactly twice it. "2× overload"
    // stays 2× at any LLMQO_SCALE.
    let probe = sim
        .run(&mut PrefixAffinity::default(), &workload(groups, 8))
        .expect("probe run");
    let svc = probe.throughput_rps();
    let mk = probe.makespan_s;
    let mut requests = workload(groups, 8);
    ArrivalProcess::Poisson {
        rate_rps: 2.0 * svc,
        seed: 29,
    }
    .assign(&mut requests);
    let offered = requests.len();
    let premium = requests.iter().filter(|r| r.priority == 1).count();
    println!(
        "probe: service rate {svc:.1} rps, makespan {mk:.2}s; offering {offered} requests \
         ({premium} premium) at {:.1} rps",
        2.0 * svc
    );

    let mut cells: Vec<Cell> = Vec::new();

    // Cell 1 — unprotected: accept everything, queue without bound.
    let unprotected = sim
        .run(&mut PrefixAffinity::default(), &requests)
        .expect("unprotected run");
    assert_eq!(unprotected.completed, offered, "ungated runs drop nothing");

    // Differential spine: the inert AdmissionPolicy must take the exact
    // ungated code path, byte for byte, on this very workload.
    let inert = sim
        .run_admitted(
            &mut PrefixAffinity::default(),
            &requests,
            &AdmissionPolicy::default(),
        )
        .expect("inert admitted run");
    assert_eq!(
        unprotected, inert,
        "inert admission diverged from the ungated dispatcher"
    );
    cells.push(Cell {
        name: "unprotected",
        report: unprotected,
    });

    // Cell 2 — KV-aware admission + priority shedding: bounded pending
    // depth plus an occupancy gate calibrated off the probe's gauges.
    let probe_mean_kv = probe
        .replicas
        .iter()
        .map(|r| r.occupancy.mean_utilization())
        .sum::<f64>()
        / probe.replicas.len() as f64;
    let admission =
        AdmissionPolicy::bounded(2 * REPLICAS).with_kv_gate((4.0 * probe_mean_kv).clamp(0.05, 1.0));
    let shed_run = sim
        .run_admitted(&mut PrefixAffinity::default(), &requests, &admission)
        .expect("admission run");
    cells.push(Cell {
        name: "admission+shed",
        report: shed_run,
    });

    // Cell 3 — per-tenant quota alone (queue depth unbounded so only the
    // quota can shed), against a t=0 burst: the flood tenant's
    // instantaneous pending is 3× the premium tenant's, so a quota of
    // premium+4 structurally caps the flood at any LLMQO_SCALE while the
    // premium tenant — whose pending can never exceed its total — is
    // untouchable. Quotas are a tenant-isolation mechanism, not a latency
    // bound, so this cell is exempt from the p99 comparison below.
    let burst = workload(groups, 8);
    let quota = AdmissionPolicy::default().with_tenant_quota(premium + REPLICAS);
    let quota_run = sim
        .run_admitted(&mut PrefixAffinity::default(), &burst, &quota)
        .expect("quota run");
    assert!(
        quota_run.shed.shed_tenant_quota > 0,
        "a 3:1 burst must exceed a {}-deep tenant quota",
        premium + REPLICAS
    );
    cells.push(Cell {
        name: "admission+quota",
        report: quota_run,
    });

    // Cell 4 — elastic autoscaling on top of admission control: sustained
    // queue pressure warms cold replicas mid-job (thresholds anchored to
    // the probe makespan so the loop reacts at any LLMQO_SCALE).
    let elastic = OverloadPolicy::admission(admission).with_scale(
        ScalePolicy::elastic(REPLICAS, 2 * REPLICAS)
            .reacting(0.05 * mk, 0.02)
            .with_cadence(0.02 * mk, 0.1 * mk)
            .with_warmup(0.05 * mk)
            .with_warmup_jitter(0.2, 7),
    );
    let scaled_run = sim
        .run_overloaded(
            &mut PrefixAffinity::default(),
            &requests,
            &FaultPlan::default(),
            &RetryPolicy::disabled(),
            &elastic,
        )
        .expect("scaled run");
    assert!(
        scaled_run.scaling.scale_ups >= 1,
        "2x overload must warm at least one replica: {:?}",
        scaled_run.scaling
    );
    cells.push(Cell {
        name: "admission+scale",
        report: scaled_run,
    });

    // Cell 5 — the full stack under chaos: a crash and a straggler with
    // retries, behind the same admission gate and autoscaler.
    let plan = FaultPlan::seeded(23)
        .crash_restart(0, 0.2 * mk, 0.6 * mk)
        .slowdown(1, 0.1 * mk, 0.8 * mk, 3.0);
    let retry = RetryPolicy::retries(3);
    let chaos_run = sim
        .run_overloaded(
            &mut PrefixAffinity::default(),
            &requests,
            &plan,
            &retry,
            &elastic,
        )
        .expect("chaos run");
    let fs = &chaos_run.faults;
    assert!(fs.engaged());
    assert_eq!(
        fs.succeeded + fs.failed + chaos_run.shed.shed,
        fs.offered,
        "three-way chaos ledger must reconcile"
    );
    cells.push(Cell {
        name: "admission+scale+chaos",
        report: chaos_run,
    });

    // The contract every protected cell must honor.
    let unprotected_p99 = cells[0].report.queue_wait_p99_s;
    for c in &cells[1..] {
        let shed = &c.report.shed;
        assert_eq!(shed.offered, offered, "{}: offered mismatch", c.name);
        if !c.report.faults.engaged() {
            assert_eq!(
                c.report.completed + shed.shed,
                offered,
                "{}: shed ledger must reconcile exactly",
                c.name
            );
        }
        assert!(shed.shed > 0, "{}: 2x overload must shed", c.name);
        assert_eq!(
            shed.shed_queue_full + shed.shed_kv_pressure + shed.shed_tenant_quota,
            shed.shed,
            "{}: per-reason counters must partition the shed total",
            c.name
        );
        assert_eq!(
            shed.max_shed_priority, 0,
            "{}: a priority-1 request was shed — zero high-priority loss violated",
            c.name
        );
        if c.name != "admission+quota" {
            assert!(
                c.report.queue_wait_p99_s < unprotected_p99 / 2.0,
                "{}: p99 queue wait {:.3}s not bounded vs unprotected {:.3}s",
                c.name,
                c.report.queue_wait_p99_s,
                unprotected_p99
            );
        }
        // Determinism: byte-identical on re-run.
        let again = if c.name == "admission+scale+chaos" {
            sim.run_overloaded(
                &mut PrefixAffinity::default(),
                &requests,
                &plan,
                &retry,
                &elastic,
            )
        } else if c.name == "admission+scale" {
            sim.run_overloaded(
                &mut PrefixAffinity::default(),
                &requests,
                &FaultPlan::default(),
                &RetryPolicy::disabled(),
                &elastic,
            )
        } else if c.name == "admission+quota" {
            sim.run_admitted(&mut PrefixAffinity::default(), &burst, &quota)
        } else {
            sim.run_admitted(&mut PrefixAffinity::default(), &requests, &admission)
        }
        .expect("deterministic rerun");
        assert_eq!(c.report, again, "{}: nondeterministic report", c.name);
    }

    println!(
        "\n{:<22} {:>9} {:>10} {:>6} {:>6} {:>5} {:>7} {:>8} {:>6} {:>6}",
        "cell", "completed", "p99 wait", "shed", "queue", "kv", "quota", "max-prio", "ups", "downs"
    );
    for c in &cells {
        let s = &c.report.shed;
        println!(
            "{:<22} {:>9} {:>9.3}s {:>6} {:>6} {:>5} {:>7} {:>8} {:>6} {:>6}",
            c.name,
            c.report.completed,
            c.report.queue_wait_p99_s,
            s.shed,
            s.shed_queue_full,
            s.shed_kv_pressure,
            s.shed_tenant_quota,
            s.max_shed_priority,
            c.report.scaling.scale_ups,
            c.report.scaling.scale_downs
        );
    }

    // BENCH_overload.json: hand-rolled (the vendored serde has no JSON
    // serializer), one object per protection-ladder cell.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"overload\",\n");
    json.push_str(
        "  \"metric\": \"p99 admission queue wait and shed/scale ledgers at 2x the \
         measured service rate; every protected cell asserts zero priority-1 loss\",\n",
    );
    json.push_str(&format!("  \"replicas\": {REPLICAS},\n"));
    json.push_str(&format!("  \"queue_cap\": {QUEUE_CAP},\n"));
    json.push_str(&format!("  \"offered\": {offered},\n"));
    json.push_str(&format!("  \"premium_offered\": {premium},\n"));
    json.push_str(&format!("  \"service_rate_rps\": {},\n", json_num(svc)));
    json.push_str(&format!(
        "  \"overload_rate_rps\": {},\n",
        json_num(2.0 * svc)
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.report.shed;
        let sc = &c.report.scaling;
        let fs = &c.report.faults;
        json.push_str(&format!(
            "    {{\"cell\": \"{}\", \"completed\": {}, \"queue_wait_p99_s\": {}, \
             \"makespan_s\": {}, \"throughput_rps\": {}, \"shed\": {}, \
             \"shed_queue_full\": {}, \"shed_kv_pressure\": {}, \"shed_tenant_quota\": {}, \
             \"max_shed_priority\": {}, \"scale_ups\": {}, \"scale_downs\": {}, \
             \"peak_replicas\": {}, \"fault_succeeded\": {}, \"fault_failed\": {}, \
             \"fault_retries\": {}}}{}\n",
            c.name,
            c.report.completed,
            json_num(c.report.queue_wait_p99_s),
            json_num(c.report.makespan_s),
            json_num(c.report.throughput_rps()),
            s.shed,
            s.shed_queue_full,
            s.shed_kv_pressure,
            s.shed_tenant_quota,
            s.max_shed_priority,
            sc.scale_ups,
            sc.scale_downs,
            sc.peak_replicas,
            fs.succeeded,
            fs.failed,
            fs.retries,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    llmqo_obs::validate_json(&json).expect("BENCH_overload.json is well-formed");
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("\nwrote BENCH_overload.json ({} cells)", cells.len());
}
