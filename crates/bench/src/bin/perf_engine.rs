//! Serving-engine performance suite: wall-time of the event-driven
//! macro-stepping [`EngineSession`](llmqo_serve::EngineSession) against the frozen
//! per-token [`SessionReference`](llmqo_serve::SessionReference) on a decode-heavy batch workload at 1k / 10k / 50k
//! requests, with and without the prefix cache. Writes `BENCH_engine.json` —
//! the repo's serving-layer performance trajectory, the sibling of
//! `BENCH_solver.json` — and prints the table with speedups.
//!
//! Reports are asserted **equal** between the two loops before timing (the
//! full-scale extension of `tests/engine_differential.rs`), so the numbers
//! always describe identical simulated work.
//!
//! The workload is the serving shape of a reordered analytics batch: a
//! shared instruction prefix, a unique per-row tail, and a uniform decode
//! budget — uniform outputs decode in lockstep, producing the deep
//! steady-state runs the macro-stepper collapses, while KV pressure keeps
//! the admission queue's head blocked (the path the reference re-hashes
//! every step).

use llmqo_bench::report;
use llmqo_serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SessionReport, SimEngine, SimRequest,
};
use std::fmt::Write as _;
use std::time::Instant;

const SHARED_PREFIX: usize = 128;
const UNIQUE_TAIL: usize = 64;
const OUTPUT_TOKENS: u32 = 256;

struct Measurement {
    engine: &'static str,
    cache: bool,
    requests: usize,
    median_ms: f64,
    steps: u64,
    job_s: f64,
}

fn workload(n: usize) -> Vec<SimRequest> {
    (0..n)
        .map(|i| {
            let mut t: Vec<u32> = (0..SHARED_PREFIX as u32).collect();
            t.extend((0..UNIQUE_TAIL as u32).map(|j| 1_000_000 + i as u32 * 128 + j));
            SimRequest::from_tokens(i, t, OUTPUT_TOKENS)
        })
        .collect()
}

fn engine(cache: bool) -> SimEngine {
    let config = if cache {
        EngineConfig::default()
    } else {
        EngineConfig::no_cache()
    };
    SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        config,
    )
}

fn run_session(engine: &SimEngine, reqs: &[SimRequest]) -> SessionReport {
    let mut s = engine.session().expect("model fits");
    for r in reqs {
        s.enqueue_ref(r);
    }
    while s.step_until(None).expect("no oversized requests") {}
    s.finish()
}

fn run_reference(engine: &SimEngine, reqs: &[SimRequest]) -> SessionReport {
    let mut s = engine.reference_session().expect("model fits");
    for r in reqs {
        s.enqueue(r.clone());
    }
    while s.step().expect("no oversized requests") {}
    s.finish()
}

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let sizes = [1_000usize, 10_000, 50_000];
    let mut all: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for &n in &sizes {
        let reqs = workload(n);
        for cache in [true, false] {
            let e = engine(cache);
            // Differential gate at full scale: identical reports or no
            // timing at all.
            let macro_out = run_session(&e, &reqs);
            let ref_out = run_reference(&e, &reqs);
            assert_eq!(
                macro_out, ref_out,
                "macro-stepped session diverged from the reference \
                 ({n} requests, cache={cache})"
            );

            let iters = match n {
                50_000 => 3,
                10_000 => 5,
                _ => 9,
            };
            let session_ms = median_ms(iters, || {
                run_session(&e, &reqs);
            });
            let reference_ms = median_ms(iters.min(3), || {
                run_reference(&e, &reqs);
            });
            let label = format!("{}-{n}", if cache { "cached" } else { "no-cache" });
            speedups.push((label, reference_ms / session_ms));
            all.push(Measurement {
                engine: "session",
                cache,
                requests: n,
                median_ms: session_ms,
                steps: macro_out.report.steps,
                job_s: macro_out.report.job_completion_time_s,
            });
            all.push(Measurement {
                engine: "reference",
                cache,
                requests: n,
                median_ms: reference_ms,
                steps: ref_out.report.steps,
                job_s: ref_out.report.job_completion_time_s,
            });
        }
    }

    let rows_fmt: Vec<Vec<String>> = all
        .iter()
        .map(|m| {
            vec![
                m.engine.to_string(),
                if m.cache { "on" } else { "off" }.to_string(),
                m.requests.to_string(),
                format!("{:.3}", m.median_ms),
                m.steps.to_string(),
                format!("{:.2}", m.job_s),
            ]
        })
        .collect();
    report::section(
        "Engine wall-time (decode-heavy batch, 192-token prompts, 256-token outputs, medians)",
        &[
            "engine",
            "cache",
            "requests",
            "median ms",
            "sim steps",
            "sim job s",
        ],
        &rows_fmt,
    );
    let speedup_rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|(k, v)| vec![k.clone(), format!("{v:.1}x")])
        .collect();
    report::section(
        "Macro-stepping session vs frozen reference",
        &["workload", "speedup"],
        &speedup_rows,
    );

    // The event-driven core must beat the per-token loop decisively on the
    // 10k decode-heavy workload. Measured on the container that built this
    // PR: 10.6× with the cache off (pure loop cost) and 2.4× with it on
    // (runtime shared with the cache bookkeeping both loops perform
    // identically). The floors are set conservatively below those so slow
    // CI runners don't flake the build, while still catching a macro-step
    // regression to per-token behavior.
    for (arm, floor) in [("no-cache-10000", 3.0f64), ("cached-10000", 1.5)] {
        let gate = speedups
            .iter()
            .find(|(k, _)| k == arm)
            .expect("10k workloads measured");
        assert!(
            gate.1 >= floor,
            "macro-stepping speedup collapsed: {:.2}x on {} (floor {floor}x)",
            gate.1,
            gate.0
        );
    }

    // BENCH_engine.json: hand-rolled (the vendored serde has no JSON
    // backend), schema kept flat so future sessions can extend it.
    let mut json = String::from(
        "{\n  \"workload\": \"decode-heavy batch: 128-token shared prefix + \
         64-token unique tail, 256 output tokens\",\n",
    );
    json.push_str("  \"metric\": \"median wall-time ms over repeated in-process runs\",\n");
    json.push_str("  \"measurements\": [\n");
    for (i, m) in all.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"cache\": {}, \"requests\": {}, \
             \"median_ms\": {:.4}, \"sim_steps\": {}}}{}",
            m.engine,
            m.cache,
            m.requests,
            m.median_ms,
            m.steps,
            if i + 1 == all.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"speedup_vs_reference\": {\n");
    for (i, (k, v)) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{k}\": {v:.2}{}",
            if i + 1 == speedups.len() { "" } else { "," }
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
