//! Reproduces **Table 1**: dataset statistics (rows, fields, average input
//! and output token lengths, applicable query types).
//!
//! Paper values are printed alongside measurements from the synthetic
//! generators; `input_avg` is measured through the real prompt encoding
//! (instruction + JSON field fragments) with this repo's tokenizer.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::{encode_table, QueryKind};
use llmqo_tokenizer::Tokenizer;

fn main() {
    let tok = Tokenizer::new();
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let paper = id.paper();
        let ds = harness::load(id);
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .expect("every dataset has a T1 or T5 query");
        let encoded = encode_table(&tok, &ds.table, query).expect("encoding succeeds");
        let measured_input = encoded.total_prompt_tokens() as f64 / encoded.reorder.nrows() as f64;
        let outputs: Vec<String> = ds
            .queries
            .iter()
            .filter(|q| !q.name.contains("multi"))
            .map(|q| format!("{:.0}", q.output_tokens_mean))
            .collect();
        let qtypes = match id {
            DatasetId::Movies | DatasetId::Products => "T1-T4",
            DatasetId::Squad | DatasetId::Fever => "T5",
            _ => "T1, T2",
        };
        rows.push(vec![
            id.name().to_owned(),
            format!("{}", ds.table.nrows()),
            format!("{}", paper.nrows),
            format!("{}", ds.table.ncols()),
            format!("{}", paper.nfields),
            format!("{measured_input:.0}"),
            format!("{}", paper.input_avg),
            format!("{{{}}}", outputs.join(", ")),
            format!(
                "{{{}}}",
                paper
                    .output_avg
                    .iter()
                    .map(|o| format!("{o:.0}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            qtypes.to_owned(),
        ]);
    }
    report::section(
        "Table 1: Datasets (measured vs paper)",
        &[
            "Dataset",
            "nrows",
            "nrows(paper)",
            "nfields",
            "nfields(paper)",
            "input_avg",
            "input_avg(paper)",
            "output_avg",
            "output_avg(paper)",
            "Query Type",
        ],
        &rows,
    );
    if harness::scale() < 1.0 {
        println!(
            "note: LLMQO_SCALE={} — row counts are scaled; token shapes unaffected",
            harness::scale()
        );
    }
}
