//! **Observability end-to-end**: runs the cluster sweep workload (Movies
//! filter, GGR schedule, prefix-affinity routing) and the BIRD adaptive SQL
//! workload with `llmqo-obs` fully enabled — sim-time tracing, the metrics
//! registry, and (via this binary's `wallclock` feature) wall-clock phase
//! histograms — and writes the artifacts:
//!
//! * `TRACE_perf.json` — Chrome `trace_event` JSON (open in Perfetto /
//!   `chrome://tracing`): per-request lifecycle spans, router decisions,
//!   cache events, per-operator executor phases.
//! * `METRICS_perf.prom` — Prometheus text exposition of every counter,
//!   gauge, and histogram the run touched.
//! * `METRICS_perf.json` — the same registry as a JSON snapshot.
//!
//! Before writing anything it proves the instrumentation is observationally
//! invisible: each workload runs once with observability disabled and once
//! enabled, and the reports must be identical. It also self-validates the
//! artifacts (trace/metrics JSON parse, Prometheus text round-trips) and
//! prints the first measured breakdown of where cached-sim wall time goes
//! (cache admission/bookkeeping vs the decode recurrence vs everything
//! else in the engine step).
//!
//! ```sh
//! LLMQO_SCALE=0.2 cargo run --release -p llmqo-bench --bin perf_trace
//! ```

use llmqo_bench::harness;
use llmqo_cluster::{tag_requests, ClusterConfig, ClusterRequest, ClusterSim, PrefixAffinity};
use llmqo_core::{Ggr, Reorderer};
use llmqo_datasets::DatasetId;
use llmqo_relational::{
    encode_table, plan_requests, project_fds, OptimizerConfig, QueryExecutor, QueryKind, SqlResult,
    SqlRunner,
};
use llmqo_serve::{EngineConfig, OracleLlm, SimEngine};
use llmqo_tokenizer::Tokenizer;

/// The adaptive differential suite's skewed truth: ~5% of rows are "Yes".
fn skewed_truth(row: usize) -> String {
    if row.is_multiple_of(20) {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

/// The `fig_cluster` workload: GGR-reordered Movies filter requests routed
/// across 4 replicas by prefix affinity.
fn run_cluster() -> llmqo_cluster::ClusterReport {
    let ds = harness::load(DatasetId::Movies);
    let query = ds
        .query_of_kind(QueryKind::Filter)
        .expect("movies has a filter query");
    let encoded = encode_table(&Tokenizer::new(), &ds.table, query).expect("encode");
    let fds = project_fds(&ds.fds, &encoded.used_cols);
    let solution = Ggr::default()
        .reorder(&encoded.reorder, &fds)
        .expect("ggr never exceeds a budget");
    let requests = plan_requests(&encoded, &solution.plan, query);
    let keys = solution.plan.prefix_keys(&encoded.reorder, 1);
    let tagged: Vec<ClusterRequest> = tag_requests(requests, &keys);
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let sim = ClusterSim::new(
        engine,
        ClusterConfig {
            replicas: 4,
            queue_cap: 64,
        },
    );
    sim.run(&mut PrefixAffinity::default(), &tagged)
        .expect("cluster run")
}

/// The `table_adaptive` arm-1 workload: BIRD multi-filter statement whose
/// pilot batch flips the execution order mid-query.
fn run_sql() -> SqlResult {
    let ds = harness::load(DatasetId::Bird);
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(OptimizerConfig::all());
    runner.register("bird", &ds.table, &ds.fds);
    runner
        .run(
            "SELECT PostId FROM bird \
             WHERE LLM('Is the comment recent? Yes or No.', Text) <> 'Yes' \
             AND LLM('Is the post statistics-related? Yes or No.', Body, Text) = 'Yes'",
            &skewed_truth,
        )
        .expect("statement runs")
}

fn hist_sum(name: &str) -> (u64, f64) {
    let h = llmqo_obs::registry().histogram(name);
    (h.count(), h.sum())
}

/// Asserts two SQL results identical in every sim-deterministic field.
/// `ExecutionReport::solve_time_s` is a wall-clock measurement and differs
/// between any two runs, instrumented or not, so whole-struct equality
/// would be flaky even without observability in the picture.
fn assert_sql_identical(reference: &SqlResult, observed: &SqlResult) {
    assert_eq!(reference.columns, observed.columns);
    assert_eq!(reference.rows, observed.rows);
    assert_eq!(reference.aggregate, observed.aggregate);
    assert_eq!(reference.notes, observed.notes);
    assert_eq!(reference.stages.len(), observed.stages.len());
    for (r, o) in reference.stages.iter().zip(&observed.stages) {
        assert_eq!(r.outputs, o.outputs, "stage outputs diverged");
        assert_eq!(r.aggregate, o.aggregate);
        assert_eq!(r.report.query, o.report.query);
        assert_eq!(r.report.claimed_phc, o.report.claimed_phc);
        assert_eq!(r.report.field_phc, o.report.field_phc);
        assert_eq!(r.report.engine, o.report.engine, "engine report diverged");
        assert_eq!(r.report.opt, o.report.opt, "opt stats diverged");
    }
}

fn main() {
    // Baseline: observability off. These reports are the oracle the
    // instrumented run must reproduce byte for byte.
    llmqo_obs::set_enabled(false);
    let cluster_ref = run_cluster();
    let sql_ref = run_sql();

    // Instrumented run: everything on, starting from clean sinks.
    llmqo_obs::set_enabled(true);
    llmqo_obs::registry().reset();
    llmqo_obs::tracer().clear();
    let cluster_obs = run_cluster();
    let sql_obs = run_sql();
    llmqo_obs::set_enabled(false);

    assert_eq!(
        cluster_ref, cluster_obs,
        "observability changed the cluster report"
    );
    assert_sql_identical(&sql_ref, &sql_obs);
    println!(
        "differential check: instrumented reports identical to disabled runs \
         (cluster: {} completions, SQL: {} rows)",
        cluster_obs.completed,
        sql_obs.rows.len()
    );

    // Export and self-validate the artifacts.
    let trace = llmqo_obs::tracer().export_chrome_json();
    llmqo_obs::validate_json(&trace).expect("trace JSON is well-formed");
    assert!(
        !llmqo_obs::tracer().is_empty(),
        "instrumented run produced no trace events"
    );
    let prom = llmqo_obs::registry().prometheus_text();
    let samples = llmqo_obs::parse_prometheus(&prom).expect("Prometheus text round-trips");
    assert!(!samples.is_empty(), "no metrics were recorded");
    let metrics_json = llmqo_obs::registry().json_snapshot();
    llmqo_obs::validate_json(&metrics_json).expect("metrics JSON is well-formed");
    std::fs::write("TRACE_perf.json", &trace).expect("write trace");
    std::fs::write("METRICS_perf.prom", &prom).expect("write prom");
    std::fs::write("METRICS_perf.json", &metrics_json).expect("write metrics json");
    println!(
        "wrote TRACE_perf.json ({} events, {} dropped), METRICS_perf.prom \
         ({} samples), METRICS_perf.json",
        llmqo_obs::tracer().len(),
        llmqo_obs::tracer().dropped(),
        samples.len()
    );

    // Where does cached-sim wall time go? `wall.step_s` wraps the whole
    // engine step; cache admission/release/bookkeeping and the macro-step
    // decode recurrence are timed separately (cache time is nested inside
    // step time; the decode recurrence runs outside `step`).
    let (step_n, step_s) = hist_sum("wall.step_s");
    let (cache_n, cache_s) = hist_sum("wall.cache_admit_s");
    let (dec_n, dec_s) = hist_sum("wall.decode_recurrence_s");
    let total = step_s + dec_s;
    let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
    println!("\ncached-sim wall-time breakdown (enabled run):");
    println!(
        "  engine steps        {:>9} calls  {:>9.3} ms  {:>5.1}%",
        step_n,
        step_s * 1e3,
        pct(step_s)
    );
    println!(
        "    of which cache    {:>9} calls  {:>9.3} ms  {:>5.1}%",
        cache_n,
        cache_s * 1e3,
        pct(cache_s)
    );
    println!(
        "    other bookkeeping {:>9}        {:>9.3} ms  {:>5.1}%",
        "",
        (step_s - cache_s).max(0.0) * 1e3,
        pct((step_s - cache_s).max(0.0))
    );
    println!(
        "  decode recurrence   {:>9} calls  {:>9.3} ms  {:>5.1}%",
        dec_n,
        dec_s * 1e3,
        pct(dec_s)
    );
    if step_n == 0 {
        println!("  (wall histograms empty — built without the `wallclock` feature?)");
    }
}
