//! Reproduces **Figure 1**: the fixed-field-ordering case study (§3.2).
//!
//! (a) A table whose first field is unique per row while the remaining m−1
//!     fields are constant: the fixed order scores 0 PHC; an optimized order
//!     scores (n−1)(m−1).
//! (b) Staggered groups: each field i holds one group of x identical values
//!     on disjoint rows. Any fixed order captures one group (x−1); per-row
//!     reordering captures all three (3(x−1)).
//!
//! Both constructions are solved with the actual GGR implementation (and
//! OPHR for (b)), demonstrating that the bounds are achieved, not just
//! theoretical.

use llmqo_bench::report;
use llmqo_core::{
    phc_of_plan, Cell, FunctionalDeps, Ggr, Ophr, OriginalOrder, ReorderTable, Reorderer,
    SortedFixed, ValueId,
};

fn cell(id: u32, len: u32) -> Cell {
    Cell::new(ValueId::from_raw(id), len)
}

fn case_a(n: u32, m: u32) -> ReorderTable {
    let cols = (0..m).map(|f| format!("field{}", f + 1)).collect();
    let mut t = ReorderTable::new(cols).unwrap();
    for r in 0..n {
        let mut row = vec![cell(1000 + r, 1)];
        row.extend((1..m).map(|f| cell(f, 1)));
        t.push_row(row).unwrap();
    }
    t
}

fn case_b(x: u32) -> ReorderTable {
    let cols = (0..3).map(|f| format!("field{}", f + 1)).collect();
    let mut t = ReorderTable::new(cols).unwrap();
    let mut unique = 1000;
    for field in 0..3u32 {
        for _ in 0..x {
            let row: Vec<Cell> = (0..3)
                .map(|f| {
                    if f == field {
                        cell(field + 1, 1)
                    } else {
                        unique += 1;
                        cell(unique, 1)
                    }
                })
                .collect();
            t.push_row(row).unwrap();
        }
    }
    t
}

fn main() {
    let (n, m) = (8u32, 5u32);
    let ta = case_a(n, m);
    let fds_a = FunctionalDeps::empty(m as usize);
    let mut rows = Vec::new();
    for solver in [
        &OriginalOrder as &dyn Reorderer,
        &SortedFixed,
        &Ggr::default(),
    ] {
        let s = solver.reorder(&ta, &fds_a).unwrap();
        rows.push(vec![
            solver.name().to_owned(),
            format!("{}", phc_of_plan(&ta, &s.plan).phc),
        ]);
    }
    rows.push(vec![
        "paper bound (n−1)(m−1)".to_owned(),
        format!("{}", (n - 1) * (m - 1)),
    ]);
    report::section(
        &format!("Fig 1a: unique first field (n={n}, m={m}, unit lengths)"),
        &["ordering", "PHC"],
        &rows,
    );

    let x = 6u32;
    let tb = case_b(x);
    let fds_b = FunctionalDeps::empty(3);
    let mut rows = Vec::new();
    for solver in [
        &OriginalOrder as &dyn Reorderer,
        &SortedFixed,
        &Ggr::default(),
        &Ophr::unbounded(),
    ] {
        let s = solver.reorder(&tb, &fds_b).unwrap();
        rows.push(vec![
            solver.name().to_owned(),
            format!("{}", phc_of_plan(&tb, &s.plan).phc),
        ]);
    }
    rows.push(vec![
        "paper fixed-order bound (x−1)".to_owned(),
        format!("{}", x - 1),
    ]);
    rows.push(vec![
        "paper per-row bound 3(x−1)".to_owned(),
        format!("{}", 3 * (x - 1)),
    ]);
    report::section(
        &format!("Fig 1b: staggered groups (x={x}, m=3, unit lengths)"),
        &["ordering", "PHC"],
        &rows,
    );
}
