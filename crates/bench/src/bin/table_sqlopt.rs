//! Reproduces the paper's **SQL-aware optimization** savings (its
//! "Optimizing LLM invocations" section) on Movies, Products and BIRD:
//! exact request deduplication, cheap-predicate/LLM-operator reordering, and
//! `LIMIT`-driven lazy evaluation, all applied by the cost-based logical
//! optimizer in `llmqo-relational`.
//!
//! Two arms per dataset, oracle (`OptimizerConfig::none()`) vs optimized
//! (`::all()`):
//!
//! 1. a duplicate-heavy filter (low-cardinality fields) — dedup savings;
//! 2. the same filter under `LIMIT k` — lazy-evaluation savings.
//!
//! Results are identical by construction (the differential suite enforces
//! it); this binary reports the *cost* side: LLM calls, prefill tokens
//! saved, and job completion time.

use llmqo_bench::{harness, report};
use llmqo_core::Ggr;
use llmqo_datasets::DatasetId;
use llmqo_relational::{OptimizerConfig, QueryExecutor, SqlResult, SqlRunner};
use llmqo_serve::{EngineConfig, OracleLlm, SimEngine};
use llmqo_tokenizer::Tokenizer;

struct Case {
    id: DatasetId,
    table: &'static str,
    dedup_sql: &'static str,
    limit_sql: &'static str,
}

const CASES: &[Case] = &[
    Case {
        id: DatasetId::Movies,
        table: "movies",
        dedup_sql: "SELECT movietitle FROM movies \
                    WHERE LLM('Is the review Fresh and from a top critic? Yes or No.', \
                    reviewtype, topcritic) = 'Yes'",
        limit_sql: "SELECT movietitle FROM movies \
                    WHERE LLM('Suitable for kids? Yes or No.', movieinfo, reviewcontent) = 'Yes' \
                    LIMIT 10",
    },
    Case {
        id: DatasetId::Products,
        table: "products",
        dedup_sql: "SELECT product_title FROM products \
                    WHERE LLM('Is this a verified 4+ star review? Yes or No.', \
                    verified_purchase, rating) = 'Yes'",
        limit_sql: "SELECT product_title FROM products \
                    WHERE LLM('Is the review helpful? Yes or No.', text, review_title) = 'Yes' \
                    LIMIT 10",
    },
    Case {
        id: DatasetId::Bird,
        table: "bird",
        dedup_sql: "SELECT PostId FROM bird \
                    WHERE LLM('Is the post statistics-related? Yes or No.', \
                    Body, PostDate, PostId) = 'Yes'",
        limit_sql: "SELECT PostId FROM bird \
                    WHERE LLM('Is the comment relevant to the post? Yes or No.', Body, Text) = 'Yes' \
                    LIMIT 10",
    },
];

fn run(case: &Case, sql: &str, opt: OptimizerConfig) -> SqlResult {
    let ds = harness::load(case.id);
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
    runner.register(case.table, &ds.table, &ds.fds);
    let truth = |row: usize| {
        if row.is_multiple_of(3) {
            "Yes".to_string()
        } else {
            "No".to_string()
        }
    };
    runner.run(sql, &truth).expect("statement runs")
}

fn totals(res: &SqlResult) -> (u64, u64, u64, f64) {
    let calls = res.stages.iter().map(|s| s.report.opt.llm_calls).sum();
    let saved = res
        .stages
        .iter()
        .map(|s| s.report.opt.llm_calls_saved())
        .sum();
    let prefill = res
        .stages
        .iter()
        .map(|s| s.report.opt.prefill_tokens_saved)
        .sum();
    let jct = res
        .stages
        .iter()
        .map(|s| s.report.engine.job_completion_time_s)
        .sum();
    (calls, saved, prefill, jct)
}

fn main() {
    let mut dedup_rows = Vec::new();
    let mut limit_rows = Vec::new();
    for case in CASES {
        // Arm 1: duplicate-heavy filter — dedup does the work.
        let off = run(case, case.dedup_sql, OptimizerConfig::none());
        let on = run(case, case.dedup_sql, OptimizerConfig::all());
        assert_eq!(on.rows, off.rows, "{}: results must not change", case.table);
        let (off_calls, _, _, off_jct) = totals(&off);
        let (on_calls, on_saved, on_prefill, on_jct) = totals(&on);
        dedup_rows.push(vec![
            case.id.name().to_owned(),
            off_calls.to_string(),
            on_calls.to_string(),
            report::pct(on_saved as f64 / off_calls as f64),
            format!("{on_prefill}"),
            report::secs(off_jct),
            report::secs(on_jct),
        ]);

        // Arm 2: LIMIT k — lazy evaluation stops the scan early.
        let off = run(case, case.limit_sql, OptimizerConfig::none());
        let on = run(case, case.limit_sql, OptimizerConfig::all());
        assert_eq!(on.rows, off.rows, "{}: results must not change", case.table);
        let (off_calls, _, _, off_jct) = totals(&off);
        let (on_calls, _, _, on_jct) = totals(&on);
        assert!(
            on_calls < off_calls,
            "{}: lazy LIMIT must issue strictly fewer requests",
            case.table
        );
        limit_rows.push(vec![
            case.id.name().to_owned(),
            off_calls.to_string(),
            on_calls.to_string(),
            report::pct((off_calls - on_calls) as f64 / off_calls as f64),
            report::secs(off_jct),
            report::secs(on_jct),
        ]);
    }
    report::section(
        "SQL-aware opts, arm 1: exact dedup on duplicate-heavy filters \
         (paper: each distinct prompt billed once)",
        &[
            "Dataset",
            "calls (off)",
            "calls (on)",
            "saved",
            "prefill tokens saved",
            "JCT off",
            "JCT on",
        ],
        &dedup_rows,
    );
    report::section(
        "SQL-aware opts, arm 2: lazy LIMIT 10 (paper: stop issuing requests \
         once enough rows qualify)",
        &[
            "Dataset",
            "calls (off)",
            "calls (on)",
            "saved",
            "JCT off",
            "JCT on",
        ],
        &limit_rows,
    );
}
