//! Reproduces **Table 7** (Appendix D.2): the filter queries on the small
//! Llama-3.2-1B model, single L4.
//!
//! Paper headline: GGR's prefix hit rates match the 8B runs, but runtime
//! gains shrink to 1.2–1.5× — the 1B model leaves so much free GPU memory
//! that large batches no longer depend on prefix sharing, and per-request
//! overheads dominate more of the (much shorter) job.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_1b();
    let mut rows = Vec::new();
    // Paper order and values: runtime ratio, orig PHR, GGR PHR.
    let paper = [
        (DatasetId::Bird, 1.5, 10.41, 83.99),
        (DatasetId::Movies, 1.3, 29.32, 82.10),
        (DatasetId::Pdmx, 1.3, 11.97, 56.00),
        (DatasetId::Products, 1.4, 24.06, 82.10),
        (DatasetId::Beer, 1.2, 47.98, 73.93),
    ];
    for (id, p_ratio, p_orig, p_ggr) in paper {
        let ds = harness::load(id);
        let query = ds.query_of_kind(QueryKind::Filter).expect("T1 exists");
        let orig = harness::run_method(&ds, query, harness::Method::CacheOriginal, &deployment)
            .expect("run");
        let ggr =
            harness::run_method(&ds, query, harness::Method::CacheGgr, &deployment).expect("run");
        let ratio =
            orig.report.engine.job_completion_time_s / ggr.report.engine.job_completion_time_s;
        rows.push(vec![
            id.name().to_owned(),
            format!("{ratio:.1}x"),
            format!("{p_ratio:.1}x"),
            report::pct(orig.report.engine.prefix_hit_rate()),
            format!("{p_orig:.1}%"),
            report::pct(ggr.report.engine.prefix_hit_rate()),
            format!("{p_ggr:.1}%"),
        ]);
    }
    report::section(
        "Table 7 (D.2): Llama-3.2-1B filter queries (paper: similar PHR, \
         smaller 1.2-1.5x runtime gains)",
        &[
            "Dataset", "orig/GGR", "paper", "PHR orig", "paper", "PHR GGR", "paper",
        ],
        &rows,
    );
}
