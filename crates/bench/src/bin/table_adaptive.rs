//! Measures the **adaptive runtime re-optimization** layer (ISSUE 5) on
//! top of the static SQL-aware optimizer: mid-query LLM-filter re-ranking
//! from observed pass rates, selectivity-aimed lazy-`LIMIT` batches, and
//! the session answer cache. Three arms, each asserting results identical
//! between modes before reporting the cost side:
//!
//! 1. **Skewed-selectivity multi-filter** (BIRD): the uniform 1/|labels|
//!    prior makes the static optimizer run a cheap-but-lax filter before an
//!    expensive-but-picky one; adaptive execution observes the real pass
//!    rates in a pilot batch and flips the order for the remaining rows —
//!    strictly fewer LLM requests (fields are unique per row, so dedup
//!    cannot mask the reordering win).
//! 2. **Repeated query** (Movies): the same statement run twice on one
//!    executor; the second run must answer > 90% of rows from the session
//!    answer cache with zero new engine requests.
//! 3. **Adaptive LIMIT sizing** (Products): batches aimed at
//!    `ceil(remaining / observed_pipeline_selectivity)` instead of blind
//!    doubling — never more engine requests (doubling overshoots the last
//!    batch), occasionally a round-trip or two more while the posterior
//!    shakes off the uniform prior.
//!
//! Writes `BENCH_adaptive.json` with the headline numbers.

use llmqo_bench::{harness, report};
use llmqo_core::Ggr;
use llmqo_datasets::DatasetId;
use llmqo_relational::{OptimizerConfig, QueryExecutor, SqlResult, SqlRunner};
use llmqo_serve::{EngineConfig, OracleLlm, SimEngine};
use llmqo_tokenizer::Tokenizer;
use std::fmt::Write as _;

/// ~5% of rows are "Yes": a `= 'Yes'` filter is picky, `<> 'Yes'` is lax.
fn skewed_truth(row: usize) -> String {
    if row.is_multiple_of(20) {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

fn total_calls(res: &SqlResult) -> u64 {
    res.stages.iter().map(|s| s.report.opt.llm_calls).sum()
}

fn total_jct(res: &SqlResult) -> f64 {
    res.stages
        .iter()
        .map(|s| s.report.engine.job_completion_time_s)
        .sum()
}

fn run(id: DatasetId, table: &str, sql: &str, opt: OptimizerConfig) -> SqlResult {
    let ds = harness::load(id);
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
    runner.register(table, &ds.table, &ds.fds);
    runner.run(sql, &skewed_truth).expect("statement runs")
}

fn main() {
    let mut json_lines: Vec<String> = Vec::new();

    // Arm 1: skewed-selectivity multi-filter. Written/cost order runs the
    // single-field `Text` filter (lax: passes ~95%) before the
    // `Body, Text` filter (picky: passes ~5%); both use unique-per-row
    // fields so request counts isolate the ordering decision.
    let sql1 = "SELECT PostId FROM bird \
                WHERE LLM('Is the comment recent? Yes or No.', Text) <> 'Yes' \
                AND LLM('Is the post statistics-related? Yes or No.', Body, Text) = 'Yes'";
    let stat = run(
        DatasetId::Bird,
        "bird",
        sql1,
        OptimizerConfig::static_only(),
    );
    let adap = run(DatasetId::Bird, "bird", sql1, OptimizerConfig::all());
    assert_eq!(adap.rows, stat.rows, "adaptivity must not change results");
    let (sc, ac) = (total_calls(&stat), total_calls(&adap));
    assert!(
        ac < sc,
        "adaptive re-ranking must issue fewer requests: {ac} vs {sc}"
    );
    let reranks: u32 = adap.stages.iter().map(|s| s.report.opt.reranks).sum();
    assert!(reranks > 0, "the pilot batch must have flipped the order");
    report::section(
        "Adaptive arm 1: mid-query re-ranking under skewed selectivity \
         (BIRD, lax-cheap filter written first)",
        &["mode", "LLM calls", "re-ranks", "JCT"],
        &[
            vec![
                "static (PR-3 optimizer)".into(),
                sc.to_string(),
                "0".into(),
                report::secs(total_jct(&stat)),
            ],
            vec![
                "adaptive".into(),
                ac.to_string(),
                reranks.to_string(),
                report::secs(total_jct(&adap)),
            ],
        ],
    );
    json_lines.push(format!(
        "  \"skewed_multi_filter\": {{ \"dataset\": \"BIRD\", \"static_calls\": {sc}, \
         \"adaptive_calls\": {ac}, \"reranks\": {reranks}, \"saved\": \"{}\" }}",
        report::pct((sc - ac) as f64 / sc as f64)
    ));

    // Arm 2: repeated query on one executor — the session answer cache
    // short-circuits every repeated prompt.
    let ds = harness::load(DatasetId::Movies);
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver);
    runner.register("movies", &ds.table, &ds.fds);
    let sql2 = "SELECT movietitle FROM movies \
                WHERE LLM('Suitable for kids? Yes or No.', movieinfo, reviewcontent) = 'Yes'";
    let first = runner.run(sql2, &skewed_truth).expect("first run");
    let second = runner.run(sql2, &skewed_truth).expect("second run");
    assert_eq!(first.rows, second.rows, "cache must not change results");
    let first_calls = total_calls(&first);
    let second_calls = total_calls(&second);
    let opt2 = second.stages[0].report.opt;
    let hit_rate = opt2.cache_hits as f64 / opt2.rows_in.max(1) as f64;
    assert!(
        hit_rate > 0.9,
        "repeated-query cache hit rate must exceed 90%: {hit_rate}"
    );
    assert_eq!(second_calls, 0, "a repeat run must not touch the engine");
    report::section(
        "Adaptive arm 2: session answer cache on a repeated statement (Movies)",
        &["run", "LLM calls", "cache hits", "hit rate", "tokens saved"],
        &[
            vec![
                "first".into(),
                first_calls.to_string(),
                first.stages[0].report.opt.cache_hits.to_string(),
                report::pct(0.0),
                first.stages[0].report.opt.cache_tokens_saved.to_string(),
            ],
            vec![
                "second".into(),
                second_calls.to_string(),
                opt2.cache_hits.to_string(),
                report::pct(hit_rate),
                opt2.cache_tokens_saved.to_string(),
            ],
        ],
    );
    json_lines.push(format!(
        "  \"repeated_query\": {{ \"dataset\": \"Movies\", \"first_calls\": {first_calls}, \
         \"second_calls\": {second_calls}, \"hit_rate\": {hit_rate:.4}, \
         \"tokens_saved\": {} }}",
        opt2.cache_tokens_saved
    ));

    // Arm 3: LIMIT batch sizing — aimed batches vs blind doubling.
    let sql3 = "SELECT product_title FROM products \
                WHERE LLM('Is this a bargain? Yes or No.', text, product_title) = 'Yes' \
                LIMIT 10";
    let stat3 = run(
        DatasetId::Products,
        "products",
        sql3,
        OptimizerConfig::static_only(),
    );
    let adap3 = run(
        DatasetId::Products,
        "products",
        sql3,
        OptimizerConfig::all(),
    );
    assert_eq!(adap3.rows, stat3.rows, "sizing must not change results");
    let stats_of = |r: &SqlResult| (total_calls(r), r.stages[0].report.opt.batches);
    let ((sc3, sb3), (ac3, ab3)) = (stats_of(&stat3), stats_of(&adap3));
    assert!(
        ac3 <= sc3,
        "aimed batches must not issue more requests than doubling: {ac3} vs {sc3}"
    );
    report::section(
        "Adaptive arm 3: LIMIT 10 batch sizing — ceil(remaining/selectivity) \
         vs blind doubling (Products)",
        &["mode", "LLM calls", "batches", "rows skipped", "JCT"],
        &[
            vec![
                "doubling".into(),
                sc3.to_string(),
                sb3.to_string(),
                stat3.stages[0].report.opt.rows_skipped.to_string(),
                report::secs(total_jct(&stat3)),
            ],
            vec![
                "aimed".into(),
                ac3.to_string(),
                ab3.to_string(),
                adap3.stages[0].report.opt.rows_skipped.to_string(),
                report::secs(total_jct(&adap3)),
            ],
        ],
    );
    json_lines.push(format!(
        "  \"limit_sizing\": {{ \"dataset\": \"Products\", \"doubling_calls\": {sc3}, \
         \"aimed_calls\": {ac3}, \"doubling_batches\": {sb3}, \"aimed_batches\": {ab3} }}"
    ));

    // BENCH_adaptive.json: hand-rolled (the vendored serde has no JSON
    // serializer) — one object per arm.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": {:.3},\n  \"metric\": \"LLM engine requests; results asserted \
         identical between modes\",",
        harness::scale()
    );
    json.push_str(&json_lines.join(",\n"));
    json.push_str("\n}\n");
    std::fs::write("BENCH_adaptive.json", json).expect("BENCH_adaptive.json is writable");
    println!("\nwrote BENCH_adaptive.json");
}
