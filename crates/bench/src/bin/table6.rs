//! Reproduces **Table 6** (Appendix D.1): GGR vs the optimal OPHR oracle on
//! small dataset prefixes.
//!
//! The paper runs OPHR on the first 10–200 rows of each dataset (PDMX cut to
//! 10 columns), terminating runs over two hours, and reports that GGR lands
//! within ~2 points of the optimal prefix hit rate while being orders of
//! magnitude faster. Our OPHR is memoized and budgeted
//! (`LLMQO_OPHR_BUDGET_S`, default 60 s per dataset).

use llmqo_bench::report;
use llmqo_core::{phc_of_plan, Ggr, Ophr, Reorderer, SolveError};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_tokenizer::Tokenizer;
use std::time::Duration;

fn main() {
    let budget_s: u64 = std::env::var("LLMQO_OPHR_BUDGET_S")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    // Paper's per-dataset sample sizes (largest successful OPHR runs).
    let cases = [
        (DatasetId::Movies, 50usize, (80.6, 80.6)),
        (DatasetId::Products, 25, (19.7, 18.5)),
        (DatasetId::Bird, 50, (77.5, 76.2)),
        (DatasetId::Pdmx, 25, (29.4, 28.6)),
        (DatasetId::Fever, 50, (7.3, 6.9)),
        (DatasetId::Beer, 10, (25.7, 25.6)),
        (DatasetId::Squad, 10, (34.0, 34.0)),
    ];
    let mut rows = Vec::new();
    for (id, nrows, (paper_ophr, paper_ggr)) in cases {
        let ds = Dataset::generate_with_rows(id, nrows.max(30));
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .expect("T1 or T5 query");
        let encoded = encode_table(&Tokenizer::new(), &ds.table, query).expect("encode");
        let mut table = encoded.reorder.head(nrows);
        let mut used_cols = encoded.used_cols.clone();
        if id == DatasetId::Pdmx {
            // Appendix D.1 cuts PDMX to 10 columns to make OPHR feasible.
            let cols: Vec<usize> = (0..10).collect();
            table = table.select_columns(&cols);
            used_cols.truncate(10);
        }
        let fds = project_fds(&ds.fds, &used_cols);

        let ggr = Ggr::default().reorder(&table, &fds).expect("ggr");
        let ggr_rate = phc_of_plan(&table, &ggr.plan).hit_rate();

        let ophr = Ophr::with_budget(Duration::from_secs(budget_s)).reorder(&table, &fds);
        let (ophr_cell, ophr_time, diff) = match &ophr {
            Ok(sol) => {
                let rate = phc_of_plan(&table, &sol.plan).hit_rate();
                assert!(
                    phc_of_plan(&table, &sol.plan).phc >= phc_of_plan(&table, &ggr.plan).phc,
                    "optimal solver beaten by greedy on {}",
                    id.name()
                );
                (
                    report::pct(rate),
                    report::secs(sol.solve_time.as_secs_f64()),
                    format!("{:+.1}pp", (ggr_rate - rate) * 100.0),
                )
            }
            Err(SolveError::BudgetExceeded { .. }) => (
                "timeout".to_owned(),
                format!(">{budget_s}s"),
                "n/a".to_owned(),
            ),
            Err(e) => panic!("unexpected solver error: {e}"),
        };
        rows.push(vec![
            format!("{}-{}", id.name(), nrows),
            ophr_cell,
            report::pct(ggr_rate),
            diff,
            format!("{paper_ophr:.1}% / {paper_ggr:.1}%"),
            ophr_time,
            report::secs(ggr.solve_time.as_secs_f64()),
        ]);
    }
    report::section(
        "Table 6 (D.1): OPHR vs GGR on dataset prefixes (paper: GGR within \
         ~2pp of optimal, hours faster)",
        &[
            "Sample",
            "OPHR PHR",
            "GGR PHR",
            "GGR-OPHR",
            "paper (OPHR/GGR)",
            "OPHR time",
            "GGR time",
        ],
        &rows,
    );
}
