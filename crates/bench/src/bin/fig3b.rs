//! Reproduces **Figure 3b**: end-to-end runtime of the five *projection*
//! queries (T2) and the two *RAG* queries (T5) under the three methods with
//! Llama-3-8B on one L4.
//!
//! Paper headline: GGR is 1.5–3.4× over Cache (Original) and 1.8–3.7× over
//! No Cache; gains shrink as decode (long outputs) dominates.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_8b();
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let ds = harness::load(id);
        let query = match ds.query_of_kind(QueryKind::Projection) {
            Some(q) => q,
            None => ds.query_of_kind(QueryKind::Rag).expect("T2 or T5 exists"),
        };
        let mut jct = Vec::new();
        for method in harness::Method::all() {
            let out = harness::run_method(&ds, query, method, &deployment).expect("run");
            jct.push(out.report.engine.job_completion_time_s);
        }
        rows.push(vec![
            format!("{} ({})", id.name(), query.name),
            report::secs(jct[0]),
            report::secs(jct[1]),
            report::secs(jct[2]),
            report::speedup(jct[0], jct[2]),
            report::speedup(jct[1], jct[2]),
        ]);
    }
    report::section(
        "Fig 3b: Projection and RAG queries, Llama-3-8B on 1xL4 (paper: GGR \
         1.8-3.7x over No Cache, 1.5-3.4x over Cache (Original))",
        &[
            "Dataset (query)",
            "No Cache",
            "Cache (Original)",
            "Cache (GGR)",
            "GGR vs NoCache",
            "GGR vs Original",
        ],
        &rows,
    );
}
