//! **Model-tier cascade benchmark** (ISSUE 10): dollar cost vs answer drift
//! of routing every row through a cheap model tier first and escalating only
//! low-confidence rows to the expensive tier, swept over the escalation
//! threshold on two full-scale workloads (Movies multi-filter, BIRD
//! filter+dedup). Writes `BENCH_cascade.json`.
//!
//! The binary is self-checking: it fails unless (1) the escalate-all
//! endpoint (`threshold = 1.0`) returns byte-identical rows to the
//! single-tier oracle, (2) at least one swept threshold on at least one
//! workload cuts the dollar cost by ≥ 30% versus serving every row on the
//! expensive tier while keeping measured result drift ≤ 5% of table rows,
//! and (3) the tier accounting reconciles (`rows in = cheap + escalated +
//! failed` on every LLM operator).
//!
//! ```sh
//! LLMQO_SCALE=0.2 cargo run --release -p llmqo-bench --bin perf_cascade
//! ```

use llmqo_bench::harness;
use llmqo_costmodel::CascadePlan;
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{CascadeConfig, OptimizerConfig, QueryExecutor, SqlResult, SqlRunner};
use llmqo_serve::{EngineConfig, OracleLlm, SimEngine};
use llmqo_tokenizer::Tokenizer;
use std::collections::HashMap;

/// Confidence-stream seed: any value works, equal seeds reproduce runs.
const SEED: u64 = 0xCA5C;
/// Acceptance floor on dollar savings at the winning threshold.
const SAVINGS_FLOOR_PCT: f64 = 30.0;
/// Acceptance ceiling on result drift (symmetric-difference rows over table
/// rows) at the winning threshold.
const DRIFT_BOUND: f64 = 0.05;
/// Escalation thresholds swept, cheapest-first. 0.0 = never escalate,
/// 1.0 = escalate every row (the oracle endpoint).
const THRESHOLDS: [f64; 6] = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];

struct Workload {
    id: DatasetId,
    table: &'static str,
    sql: &'static str,
}

const WORKLOADS: [Workload; 2] = [
    Workload {
        id: DatasetId::Movies,
        table: "movies",
        sql: "SELECT movietitle FROM movies \
              WHERE LLM('Suitable for kids? Yes or No.', movieinfo, reviewcontent) = 'Yes' \
              AND LLM('Fresh and from a top critic? Yes or No.', reviewtype, topcritic) = 'Yes'",
    },
    Workload {
        id: DatasetId::Bird,
        table: "bird",
        sql: "SELECT PostId FROM bird \
              WHERE LLM('Is the post statistics-related? Yes or No.', Body, Text) = 'Yes'",
    },
];

fn run_statement(ds: &Dataset, table: &str, sql: &str, opt: OptimizerConfig) -> SqlResult {
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = llmqo_core::Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
    runner.register(table, &ds.table, &ds.fds);
    let truth = |row: usize| {
        if row % 3 != 2 {
            "Yes".to_string()
        } else {
            "No".to_string()
        }
    };
    runner.run(sql, &truth).expect("statement runs")
}

/// Multiset symmetric difference between two row sets, in rows.
fn row_drift(a: &[Vec<String>], b: &[Vec<String>]) -> usize {
    let mut counts: HashMap<&[String], i64> = HashMap::new();
    for row in a {
        *counts.entry(row.as_slice()).or_default() += 1;
    }
    for row in b {
        *counts.entry(row.as_slice()).or_default() -= 1;
    }
    counts.values().map(|c| c.unsigned_abs() as usize).sum()
}

struct SweepPoint {
    threshold: f64,
    escalation_rate: f64,
    cascade_cost: f64,
    single_cost: f64,
    savings_pct: f64,
    drift: f64,
}

fn point(
    ds: &Dataset,
    res: &SqlResult,
    plan: CascadePlan,
    t: f64,
    oracle: &SqlResult,
) -> SweepPoint {
    let mut cheap_p = 0u64;
    let mut cheap_o = 0u64;
    let mut esc_p = 0u64;
    let mut esc_o = 0u64;
    let mut rows_cheap = 0u64;
    let mut rows_esc = 0u64;
    for s in &res.stages {
        let o = &s.report.opt;
        assert_eq!(
            o.rows_in,
            o.rows_cheap + o.rows_escalated + o.rows_failed,
            "tier accounting must reconcile per operator"
        );
        cheap_p += o.cheap_prompt_tokens;
        cheap_o += o.cheap_output_tokens;
        esc_p += o.esc_prompt_tokens;
        esc_o += o.esc_output_tokens;
        rows_cheap += o.rows_cheap;
        rows_esc += o.rows_escalated;
    }
    // The cheap tier serves the full deduplicated batch, so its token
    // volume is exactly what a single expensive tier would have served.
    let cascade_cost = plan.cheap.cost(cheap_p as f64, cheap_o as f64)
        + plan.expensive.cost(esc_p as f64, esc_o as f64);
    let single_cost = plan.expensive.cost(cheap_p as f64, cheap_o as f64);
    let drift = row_drift(&res.rows, &oracle.rows) as f64 / ds.table.nrows().max(1) as f64;
    SweepPoint {
        threshold: t,
        escalation_rate: rows_esc as f64 / (rows_cheap + rows_esc).max(1) as f64,
        cascade_cost,
        single_cost,
        savings_pct: 100.0 * (1.0 - cascade_cost / single_cost.max(f64::MIN_POSITIVE)),
        drift,
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let scale = harness::scale();
    let mut workload_json: Vec<String> = Vec::new();
    let mut any_winner = false;

    for w in &WORKLOADS {
        let ds = harness::load(w.id);
        let oracle = run_statement(&ds, w.table, w.sql, OptimizerConfig::all());
        println!(
            "\n{} ({} rows, scale {scale}): single expensive tier vs mini→sonnet cascade",
            w.id.name(),
            ds.table.nrows()
        );
        println!(
            "{:>9} {:>10} {:>12} {:>12} {:>9} {:>8}",
            "threshold", "esc rate", "cascade $", "single $", "savings", "drift"
        );

        let points: Vec<SweepPoint> = THRESHOLDS
            .iter()
            .map(|&t| {
                let plan = CascadePlan::mini_to_sonnet(t, SEED);
                let res = run_statement(
                    &ds,
                    w.table,
                    w.sql,
                    OptimizerConfig::cascaded(CascadeConfig::new(plan)),
                );
                if t >= 1.0 {
                    assert_eq!(
                        res.rows, oracle.rows,
                        "escalate-all must be byte-identical to the single-tier oracle"
                    );
                    assert_eq!(res.columns, oracle.columns);
                }
                point(&ds, &res, plan, t, &oracle)
            })
            .collect();

        let mut point_json: Vec<String> = Vec::new();
        for p in &points {
            println!(
                "{:>9.2} {:>9.1}% {:>11.4} {:>11.4} {:>8.1}% {:>7.2}%",
                p.threshold,
                100.0 * p.escalation_rate,
                p.cascade_cost,
                p.single_cost,
                p.savings_pct,
                100.0 * p.drift
            );
            point_json.push(format!(
                "      {{\"threshold\": {}, \"escalation_rate\": {}, \"cascade_cost_usd\": {}, \
                 \"single_tier_cost_usd\": {}, \"savings_pct\": {}, \"drift\": {}}}",
                json_num(p.threshold),
                json_num(p.escalation_rate),
                json_num(p.cascade_cost),
                json_num(p.single_cost),
                json_num(p.savings_pct),
                json_num(p.drift)
            ));
        }
        let winner = points
            .iter()
            .filter(|p| p.drift <= DRIFT_BOUND)
            .max_by(|a, b| a.savings_pct.total_cmp(&b.savings_pct));
        if let Some(win) = winner {
            println!(
                "best within drift bound: threshold {:.2} → {:.1}% cheaper at {:.2}% drift",
                win.threshold,
                win.savings_pct,
                100.0 * win.drift
            );
            if win.savings_pct >= SAVINGS_FLOOR_PCT {
                any_winner = true;
            }
        }
        workload_json.push(format!(
            "    {{\n      \"workload\": \"{}\",\n      \"rows\": {},\n      \"sweep\": [\n{}\n      ]\n    }}",
            w.id.name(),
            ds.table.nrows(),
            point_json.join(",\n")
        ));
    }

    assert!(
        any_winner,
        "no swept threshold reached {SAVINGS_FLOOR_PCT}% dollar savings within the \
         {DRIFT_BOUND} drift bound on any workload"
    );

    let json = format!(
        "{{\n  \"bench\": \"cascade\",\n  \"metric\": \"dollar cost and result drift of a \
         mini-to-sonnet model cascade vs serving every row on the expensive tier, swept over \
         the escalation threshold\",\n  \"scale\": {},\n  \"seed\": {SEED},\n  \
         \"savings_floor_pct\": {},\n  \"drift_bound\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        json_num(scale),
        json_num(SAVINGS_FLOOR_PCT),
        json_num(DRIFT_BOUND),
        workload_json.join(",\n")
    );
    llmqo_obs::validate_json(&json).expect("BENCH_cascade.json is well-formed");
    std::fs::write("BENCH_cascade.json", &json).expect("write BENCH_cascade.json");
    println!("\nwrote BENCH_cascade.json");
}
