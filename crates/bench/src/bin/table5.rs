//! Reproduces **Table 5**: GGR solver time per dataset (§6.5).
//!
//! The paper's Python implementation solves every dataset in under 15 s
//! (row depth 4, column depth 2) — "less than 0.01% of LLM query runtimes".
//! This Rust implementation is orders of magnitude faster still; the table
//! also reports the solver-to-query-time ratio measured end to end.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_8b();
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let paper = id.paper();
        let ds = harness::load(id);
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .expect("T1 or T5 query");
        let out =
            harness::run_method(&ds, query, harness::Method::CacheGgr, &deployment).expect("run");
        let solver = out.report.solve_time_s;
        let query_time = out.report.engine.job_completion_time_s;
        rows.push(vec![
            id.name().to_owned(),
            report::secs(solver),
            format!("{:.1}s", paper.solver_time_s),
            report::pct(solver / query_time),
        ]);
    }
    report::section(
        "Table 5: GGR solver time (paper: < 15s per dataset, < 0.01% of query \
         runtime)",
        &["Dataset", "Solver", "Solver(paper)", "of query time"],
        &rows,
    );
}
