//! Solver performance suite: wall-time and claimed PHC for every reordering
//! solver on the movies filter workload at 250 / 1000 / 4000 rows, plus the
//! exact OPHR on a 16-row prefix. Writes `BENCH_solver.json` — the repo's
//! solver-performance trajectory — and prints the table with the speedup of
//! the columnar [`Ggr`]/[`Ophr`] core over the frozen
//! [`GgrReference`]/[`OphrReference`] implementations.
//!
//! Times are medians over repeated runs (more repeats at small sizes);
//! claimed PHC is asserted identical between each optimized solver and its
//! reference before timing, so the numbers always describe equivalent work.

use llmqo_bench::report;
use llmqo_core::{
    FunctionalDeps, Ggr, GgrReference, Ophr, OphrReference, OriginalOrder, ReorderTable, Reorderer,
    SortedFixed, StatFixed,
};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_tokenizer::Tokenizer;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    solver: &'static str,
    rows: usize,
    median_ms: f64,
    claimed_phc: u64,
}

fn movies_table(rows: usize) -> (ReorderTable, FunctionalDeps) {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, rows);
    let q = ds.query_of_kind(QueryKind::Filter).expect("filter query");
    let e = encode_table(&Tokenizer::new(), &ds.table, q).expect("encoding succeeds");
    let fds = project_fds(&ds.fds, &e.used_cols);
    (e.reorder, fds)
}

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn measure(
    solver: &dyn Reorderer,
    name: &'static str,
    table: &ReorderTable,
    fds: &FunctionalDeps,
    rows: usize,
    iters: usize,
) -> Measurement {
    let claimed_phc = solver
        .reorder(table, fds)
        .expect("solver succeeds")
        .claimed_phc;
    let median_ms = median_ms(iters, || {
        solver.reorder(table, fds).expect("solver succeeds");
    });
    Measurement {
        solver: name,
        rows,
        median_ms,
        claimed_phc,
    }
}

fn main() {
    let sizes = [250usize, 1000, 4000];
    let mut all: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for &rows in &sizes {
        let (table, fds) = movies_table(rows);
        let iters = if rows >= 4000 { 15 } else { 41 };
        let ggr_reference = GgrReference::default();
        let ggr = Ggr::default();
        let solvers: Vec<(&dyn Reorderer, &'static str)> = vec![
            (&OriginalOrder, "original"),
            (&SortedFixed, "sorted-fixed"),
            (&StatFixed, "stat-fixed"),
            (&ggr_reference, "ggr-reference"),
            (&ggr, "ggr"),
        ];
        let mut by_name: Vec<Measurement> = solvers
            .into_iter()
            .map(|(solver, name)| measure(solver, name, &table, &fds, rows, iters))
            .collect();
        let ggr = by_name.iter().find(|m| m.solver == "ggr").expect("ggr ran");
        let reference = by_name
            .iter()
            .find(|m| m.solver == "ggr-reference")
            .expect("reference ran");
        assert_eq!(
            ggr.claimed_phc, reference.claimed_phc,
            "columnar GGR diverged from the reference at {rows} rows"
        );
        speedups.push((
            format!("ggr/movies-{rows}"),
            reference.median_ms / ggr.median_ms,
        ));
        all.append(&mut by_name);
    }

    // Exact solver on a small prefix (OPHR is exponential).
    let (full, fds) = movies_table(64);
    let head = full.head(16);
    let ophr = measure(&Ophr::unbounded(), "ophr", &head, &fds, 16, 21);
    let ophr_ref = measure(
        &OphrReference::unbounded(),
        "ophr-reference",
        &head,
        &fds,
        16,
        21,
    );
    assert_eq!(ophr.claimed_phc, ophr_ref.claimed_phc, "OPHR diverged");
    speedups.push(("ophr/movies-16".into(), ophr_ref.median_ms / ophr.median_ms));
    all.push(ophr_ref);
    all.push(ophr);

    // Report table.
    let rows_fmt: Vec<Vec<String>> = all
        .iter()
        .map(|m| {
            vec![
                m.solver.to_string(),
                m.rows.to_string(),
                format!("{:.3}", m.median_ms),
                m.claimed_phc.to_string(),
            ]
        })
        .collect();
    report::section(
        "Solver wall-time (movies filter workload, medians)",
        &["solver", "rows", "median ms", "claimed PHC"],
        &rows_fmt,
    );
    let speedup_rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|(k, v)| vec![k.clone(), format!("{v:.1}x")])
        .collect();
    report::section(
        "Columnar core vs frozen reference",
        &["workload", "speedup"],
        &speedup_rows,
    );

    // BENCH_solver.json: hand-rolled (the vendored serde has no JSON
    // backend), schema kept flat so future sessions can extend it.
    let mut json =
        String::from("{\n  \"workload\": \"movies filter query (synthetic, seeded)\",\n");
    json.push_str("  \"metric\": \"median wall-time ms over repeated in-process runs\",\n");
    json.push_str("  \"measurements\": [\n");
    for (i, m) in all.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"solver\": \"{}\", \"rows\": {}, \"median_ms\": {:.4}, \"claimed_phc\": {}}}{}",
            m.solver,
            m.rows,
            m.median_ms,
            m.claimed_phc,
            if i + 1 == all.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"speedup_vs_reference\": {\n");
    for (i, (k, v)) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{k}\": {v:.2}{}",
            if i + 1 == speedups.len() { "" } else { "," }
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!("\nwrote BENCH_solver.json");
}
