//! Reproduces **Table 3**: measured prompt-cache costs on OpenAI
//! (GPT-4o-mini) and Anthropic (Claude 3.5 Sonnet) pricing for FEVER.
//!
//! Following §6.3: 1 000 FEVER rows, every field value duplicated five times
//! so shared prefixes clear the providers' 1 024-token caching minimum;
//! Anthropic uses the paper's conservative policy of marking only the first
//! 1 024 tokens per request. Paper: GGR saves ≈32% on OpenAI (62.2% hit
//! rate; original gets 0%) and ≈21% on Anthropic (30.6% hit rate).

use llmqo_bench::{harness, report};
use llmqo_core::{Ggr, OriginalOrder, Reorderer};
use llmqo_costmodel::{AnthropicCache, OpenAiCache, Pricing, ProviderCache, Usage};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_tokenizer::Tokenizer;

// The paper duplicates field values "five times"; with this repo's
// tokenizer three copies already land prompts in the same ~4k-token regime
// the paper's measured hit rates imply.
const DUPLICATION: usize = 3;
const ROWS: usize = 1000;

/// Builds each request's token stream under `solver`'s schedule, duplicating
/// every field fragment as in the paper's setup.
fn prompts(ds: &Dataset, solver: &dyn Reorderer) -> Vec<Vec<u32>> {
    let query = ds.query_of_kind(QueryKind::Rag).expect("FEVER RAG query");
    let encoded = encode_table(&Tokenizer::new(), &ds.table, query).expect("encode");
    let fds = project_fds(&ds.fds, &encoded.used_cols);
    let solution = solver.reorder(&encoded.reorder, &fds).expect("solve");
    solution
        .plan
        .rows
        .iter()
        .map(|rp| {
            let mut toks: Vec<u32> = encoded.instruction.to_vec();
            for &f in &rp.fields {
                let cell = encoded.reorder.cell(rp.row, f as usize);
                let frag = &encoded.fragments[cell.value.as_u32() as usize];
                for _ in 0..DUPLICATION {
                    toks.extend_from_slice(frag);
                }
            }
            toks
        })
        .collect()
}

fn run(cache: &mut dyn ProviderCache, prompts: &[Vec<u32>], output_tokens: u64) -> Usage {
    let mut usage = Usage::default();
    for p in prompts {
        usage.add(cache.process(p, output_tokens));
    }
    usage
}

fn main() {
    let rows = (ROWS as f64 * harness::scale()).round().max(30.0) as usize;
    let ds = Dataset::generate_with_rows(DatasetId::Fever, rows);
    let orig_prompts = prompts(&ds, &OriginalOrder);
    let ggr_prompts = prompts(&ds, &Ggr::default());
    let avg_len =
        orig_prompts.iter().map(Vec::len).sum::<usize>() as f64 / orig_prompts.len() as f64;
    println!("FEVER x{DUPLICATION} duplication, {rows} rows, avg prompt {avg_len:.0} tokens");

    let mut out = Vec::new();
    for (pricing, provider) in [
        (Pricing::gpt4o_mini(), "OpenAI"),
        (Pricing::claude35_sonnet(), "Anthropic"),
    ] {
        let mut results: Vec<(&str, Usage)> = Vec::new();
        for (name, ps) in [("Original", &orig_prompts), ("GGR", &ggr_prompts)] {
            let usage = if provider == "OpenAI" {
                run(&mut OpenAiCache::new(), ps, 3)
            } else {
                run(&mut AnthropicCache::new(), ps, 3)
            };
            results.push((name, usage));
        }
        let base_cost = results[0].1.cost(&pricing);
        for (name, usage) in &results {
            let cost = usage.cost(&pricing);
            out.push(vec![
                pricing.name.clone(),
                (*name).to_owned(),
                report::pct(usage.hit_rate()),
                format!("${cost:.2}"),
                if *name == "GGR" {
                    report::pct(1.0 - cost / base_cost)
                } else {
                    "-".to_owned()
                },
            ]);
        }
    }
    report::section(
        "Table 3: provider costs on FEVER (paper: OpenAI 62.2% hits / 32% \
         savings; Anthropic 30.6% hits / 21% savings; Original 0% hits)",
        &["Model", "Method", "PHR", "Cost", "Savings"],
        &out,
    );
}
