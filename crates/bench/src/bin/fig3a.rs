//! Reproduces **Figure 3a**: end-to-end runtime of the five LLM *filter*
//! queries (T1) under No Cache / Cache (Original) / Cache (GGR) with
//! Llama-3-8B on one L4.
//!
//! Paper headline: GGR is 1.8–3.0× faster than Cache (Original) and
//! 2.1–3.8× faster than No Cache.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_8b();
    let mut rows = Vec::new();
    for id in [
        DatasetId::Movies,
        DatasetId::Products,
        DatasetId::Bird,
        DatasetId::Pdmx,
        DatasetId::Beer,
    ] {
        let ds = harness::load(id);
        let query = ds.query_of_kind(QueryKind::Filter).expect("T1 exists");
        let mut jct = Vec::new();
        for method in harness::Method::all() {
            let out = harness::run_method(&ds, query, method, &deployment).expect("run");
            jct.push(out.report.engine.job_completion_time_s);
        }
        rows.push(vec![
            id.name().to_owned(),
            report::secs(jct[0]),
            report::secs(jct[1]),
            report::secs(jct[2]),
            report::speedup(jct[0], jct[2]),
            report::speedup(jct[1], jct[2]),
        ]);
    }
    report::section(
        "Fig 3a: Filter queries, Llama-3-8B on 1xL4 (paper: GGR 2.1-3.8x over \
         No Cache, 1.8-3.0x over Cache (Original))",
        &[
            "Dataset",
            "No Cache",
            "Cache (Original)",
            "Cache (GGR)",
            "GGR vs NoCache",
            "GGR vs Original",
        ],
        &rows,
    );
}
