//! **Pipelined execution benchmark** (ISSUE 8): end-to-end simulated time of
//! a full-scale multi-filter SQL statement under the classic relay
//! (sequential per-operator sessions) vs pipelined, cluster-parallel
//! execution (overlapped micro-batches, 8-replica prefix-affine fan-out per
//! LLM operator), plus the wall-clock cost of driving a backpressured
//! batch-arrival cluster sweep single-stepped vs macro-stepped. Writes
//! `BENCH_pipeline.json`.
//!
//! The binary is self-checking: it fails unless (1) the pipelined statement
//! returns byte-identical rows to the sequential one, (2) the simulated
//! end-to-end speedup is ≥ 2×, (3) the macro-stepped sweep takes at least
//! one backpressure macro-step, and (4) its report equals the
//! single-stepped oracle's.
//!
//! ```sh
//! LLMQO_SCALE=0.2 cargo run --release -p llmqo-bench --bin perf_pipeline
//! ```

use llmqo_bench::harness;
use llmqo_cluster::{ClusterConfig, ClusterRequest, ClusterSim, PrefixAffinity, RoundRobin};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{OptimizerConfig, QueryExecutor, SqlResult, SqlRunner};
use llmqo_serve::{EngineConfig, OracleLlm, SimEngine, SimRequest};
use llmqo_tokenizer::Tokenizer;
use std::time::Instant;

const REPLICAS: usize = 8;
const MICRO_BATCH_ROWS: usize = 96;
const SPEEDUP_FLOOR: f64 = 2.0;

/// The statement under test: three LLM filters over duplicate-heavy fields
/// — the shape where dedup compaction, prefix reordering, and per-operator
/// fan-out all engage at once.
const SQL: &str = "SELECT movietitle FROM movies \
                   WHERE LLM('Suitable for kids? Yes or No.', movieinfo, reviewcontent) = 'Yes' \
                   AND LLM('Fresh and from a top critic? Yes or No.', reviewtype, topcritic) = 'Yes' \
                   AND LLM('Is the review substantive? Yes or No.', reviewcontent) <> 'No'";

fn run_statement(ds: &Dataset, opt: OptimizerConfig) -> SqlResult {
    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = llmqo_core::Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
    runner.register("movies", &ds.table, &ds.fds);
    let truth = |row: usize| {
        if row % 3 != 2 {
            "Yes".to_string()
        } else {
            "No".to_string()
        }
    };
    runner.run(SQL, &truth).expect("statement runs")
}

/// Relay end-to-end time: each stage runs on its own zero-based session, so
/// the statement takes the *sum* of stage completion times.
fn relay_time_s(r: &SqlResult) -> f64 {
    r.stages
        .iter()
        .map(|s| s.report.engine.job_completion_time_s)
        .sum()
}

/// Pipelined end-to-end time: all stages share one timeline, so the
/// statement is done at the *max* stage clock (the makespan).
fn pipeline_makespan_s(r: &SqlResult) -> f64 {
    r.stages
        .iter()
        .map(|s| s.report.engine.job_completion_time_s)
        .fold(0.0, f64::max)
}

/// Grouped shared-prefix requests arriving in bursts that exceed the
/// cluster's total queue capacity — the batch-arrival shape whose
/// backpressured phases used to single-step.
fn bursty_workload(groups: usize, per_group: usize) -> Vec<ClusterRequest> {
    let burst = REPLICAS * 8;
    (0..groups * per_group)
        .map(|i| {
            let g = (i / per_group) as u32;
            let mut toks: Vec<u32> = (0..64).map(|j| g * 1000 + j).collect();
            toks.extend((0..16).map(|j| 500_000 + i as u32 * 64 + j));
            let mut req = ClusterRequest::new(SimRequest::from_tokens(i, toks, 160), u64::from(g));
            req.arrival_s = (i / burst) as f64 * 0.5;
            req
        })
        .collect()
}

fn median_wall_ms(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let scale = harness::scale();
    let nrows = ((1200.0 * scale).round() as usize).max(120);
    let ds = Dataset::generate_with_rows(DatasetId::Movies, nrows);
    println!("statement: {nrows} rows, 3 LLM filters, scale {scale}");

    // --- Arm 1: sequential relay (every optimization, single sessions). ---
    let sequential = run_statement(&ds, OptimizerConfig::all());
    let relay_s = relay_time_s(&sequential);

    // --- Arm 2: pipelined + 8-replica fan-out. ---
    let mut piped_opt = OptimizerConfig::pipelined(REPLICAS);
    piped_opt.pipeline_batch_rows = MICRO_BATCH_ROWS;
    let piped = run_statement(&ds, piped_opt);
    let makespan_s = pipeline_makespan_s(&piped);

    assert_eq!(
        sequential.rows, piped.rows,
        "pipelined execution changed statement results"
    );
    assert_eq!(sequential.columns, piped.columns);
    let speedup = relay_s / makespan_s.max(f64::MIN_POSITIVE);
    println!("\n{:<28} {:>12} {:>12}", "arm", "sim time", "llm calls");
    let calls = |r: &SqlResult| -> u64 { r.stages.iter().map(|s| s.report.opt.llm_calls).sum() };
    println!(
        "{:<28} {:>11.2}s {:>12}",
        "sequential relay",
        relay_s,
        calls(&sequential)
    );
    println!(
        "{:<28} {:>11.2}s {:>12}",
        format!("pipelined ×{REPLICAS} replicas"),
        makespan_s,
        calls(&piped)
    );
    println!("end-to-end speedup: {speedup:.2}×");
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "pipelined speedup {speedup:.2}× is below the {SPEEDUP_FLOOR}× acceptance floor"
    );

    // --- Arm 3: macro-stepped vs single-stepped backpressure sweep. ---
    let groups = ((40.0 * scale).round() as usize).max(10);
    let requests = bursty_workload(groups, 8);
    let sim = ClusterSim::new(
        SimEngine::new(harness::deployment_8b(), EngineConfig::default()),
        ClusterConfig {
            replicas: REPLICAS,
            queue_cap: 2,
        },
    );
    let mut macro_ms = Vec::new();
    let mut single_ms = Vec::new();
    let mut reports = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let coarse = sim
            .run(&mut PrefixAffinity::default(), &requests)
            .expect("macro-stepped sweep");
        macro_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        let fine = sim
            .run_single_stepped(&mut PrefixAffinity::default(), &requests)
            .expect("single-stepped sweep");
        single_ms.push(t1.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            coarse, fine,
            "macro-stepped sweep diverged from the single-stepped oracle"
        );
        assert!(
            coarse.backpressure_macro_steps > 0,
            "backpressured phases still single-step (counter is zero)"
        );
        reports = Some((coarse, fine));
    }
    // Round-robin exercises the same contract through a prefix-blind policy.
    let rr_coarse = sim.run(&mut RoundRobin, &requests).expect("rr sweep");
    let rr_fine = sim
        .run_single_stepped(&mut RoundRobin, &requests)
        .expect("rr oracle");
    assert_eq!(rr_coarse, rr_fine, "round-robin macro-stepping diverged");
    assert!(rr_coarse.backpressure_macro_steps > 0);

    let (coarse, _) = reports.expect("three sweep iterations ran");
    let macro_wall = median_wall_ms(macro_ms);
    let single_wall = median_wall_ms(single_ms);
    println!(
        "\nbackpressure sweep ({} requests, {REPLICAS} replicas, queue cap 2):",
        requests.len()
    );
    println!(
        "  macro-stepped  {macro_wall:>8.1} ms wall   ({} backpressure macro-steps)",
        coarse.backpressure_macro_steps
    );
    println!("  single-stepped {single_wall:>8.1} ms wall   (oracle)");
    println!(
        "  driver speedup {:.2}× wall-clock, reports identical",
        single_wall / macro_wall.max(f64::MIN_POSITIVE)
    );

    // BENCH_pipeline.json: hand-rolled (the vendored serde has no JSON
    // serializer).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"pipeline\",\n");
    json.push_str(
        "  \"metric\": \"simulated end-to-end statement time, relay vs pipelined fan-out; \
         wall ms of macro- vs single-stepped backpressure sweeps (medians of 3)\",\n",
    );
    json.push_str(&format!("  \"rows\": {nrows},\n"));
    json.push_str(&format!("  \"replicas\": {REPLICAS},\n"));
    json.push_str(&format!("  \"micro_batch_rows\": {MICRO_BATCH_ROWS},\n"));
    json.push_str(&format!(
        "  \"sequential_relay_s\": {},\n",
        json_num(relay_s)
    ));
    json.push_str(&format!(
        "  \"pipelined_makespan_s\": {},\n",
        json_num(makespan_s)
    ));
    json.push_str(&format!("  \"speedup\": {},\n", json_num(speedup)));
    json.push_str(&format!(
        "  \"sequential_llm_calls\": {},\n",
        calls(&sequential)
    ));
    json.push_str(&format!("  \"pipelined_llm_calls\": {},\n", calls(&piped)));
    json.push_str(&format!(
        "  \"rows_identical\": {},\n",
        sequential.rows == piped.rows
    ));
    json.push_str("  \"backpressure_sweep\": {\n");
    json.push_str(&format!("    \"requests\": {},\n", requests.len()));
    json.push_str("    \"queue_cap\": 2,\n");
    json.push_str(&format!(
        "    \"macro_steps\": {},\n",
        coarse.backpressure_macro_steps
    ));
    json.push_str(&format!(
        "    \"macro_stepped_wall_ms\": {},\n",
        json_num(macro_wall)
    ));
    json.push_str(&format!(
        "    \"single_stepped_wall_ms\": {},\n",
        json_num(single_wall)
    ));
    json.push_str("    \"reports_identical\": true\n");
    json.push_str("  }\n}\n");
    llmqo_obs::validate_json(&json).expect("BENCH_pipeline.json is well-formed");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("\nwrote BENCH_pipeline.json");
}
