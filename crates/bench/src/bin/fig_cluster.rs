//! **Cluster sweep** (beyond the paper): replica count × routing policy over
//! a GGR-reordered filter workload, measuring how much of the solver-created
//! prefix locality each dispatch policy preserves at scale.
//!
//! The paper optimizes for a single serving instance; this sweep shows that
//! prefix-blind dispatch (round-robin, least-loaded) re-pays each shared
//! prefix once *per replica*, while consistent prefix-affinity routing keeps
//! the cluster-wide hit rate near the single-node rate as replicas grow.
//!
//! ```sh
//! LLMQO_SCALE=0.2 cargo run --release -p llmqo-bench --bin fig_cluster
//! ```

use llmqo_bench::{harness, report};
use llmqo_cluster::{
    tag_requests, ClusterConfig, ClusterRequest, ClusterSim, LeastLoaded, PrefixAffinity,
    RoundRobin, Router,
};
use llmqo_core::{Ggr, Reorderer};
use llmqo_datasets::DatasetId;
use llmqo_relational::{encode_table, plan_requests, project_fds, QueryKind};
use llmqo_serve::{EngineConfig, SimEngine};
use llmqo_tokenizer::Tokenizer;

fn main() {
    let id = DatasetId::Movies;
    let ds = harness::load(id);
    let query = ds
        .query_of_kind(QueryKind::Filter)
        .expect("movies has a filter query");

    // GGR schedule + per-row prefix identities (depth 1: the leading
    // scheduled field, which is the group GGR sorted on).
    let encoded = encode_table(&Tokenizer::new(), &ds.table, query).expect("encode");
    let fds = project_fds(&ds.fds, &encoded.used_cols);
    let solution = Ggr::default()
        .reorder(&encoded.reorder, &fds)
        .expect("ggr never exceeds a budget");
    let requests = plan_requests(&encoded, &solution.plan, query);
    let keys = solution.plan.prefix_keys(&encoded.reorder, 1);
    let tagged: Vec<ClusterRequest> = tag_requests(requests, &keys);

    let engine = SimEngine::new(harness::deployment_8b(), EngineConfig::default());
    let single_phr = {
        let sim = ClusterSim::new(
            engine.clone(),
            ClusterConfig {
                replicas: 1,
                queue_cap: tagged.len().max(1),
            },
        );
        sim.run(&mut RoundRobin, &tagged)
            .expect("single-replica run")
            .prefix_hit_rate()
    };

    let mut rows = Vec::new();
    let mut affinity_beats_rr_at_4plus = true;
    for &replicas in &[1usize, 2, 4, 8] {
        let sim = ClusterSim::new(
            engine.clone(),
            ClusterConfig {
                replicas,
                queue_cap: 64,
            },
        );
        let mut phr = std::collections::HashMap::new();
        for router in [
            &mut RoundRobin as &mut dyn Router,
            &mut LeastLoaded,
            &mut PrefixAffinity::default(),
            &mut PrefixAffinity::bounded(1.25),
        ] {
            let name = router.name();
            let r = sim.run(router, &tagged).expect("cluster run");
            assert_eq!(r.completed, tagged.len(), "lost requests under {name}");
            phr.insert(name, r.prefix_hit_rate());
            rows.push(vec![
                replicas.to_string(),
                name.to_owned(),
                report::secs(r.makespan_s),
                report::pct(r.prefix_hit_rate()),
                report::pct(r.prefix_hit_rate() / single_phr.max(1e-12)),
                format!("{:.2}", r.load_skew()),
                report::secs(r.queue_wait_p99_s),
                format!("{:.0}", r.throughput_rps()),
            ]);
        }
        if replicas >= 4 && phr["prefix-affinity"] <= phr["round-robin"] {
            affinity_beats_rr_at_4plus = false;
        }
    }
    report::section(
        &format!(
            "Cluster sweep: {} filter, {} requests, GGR schedule (single-node PHR {})",
            id.name(),
            tagged.len(),
            report::pct(single_phr)
        ),
        &[
            "Replicas",
            "Policy",
            "Makespan",
            "PHR",
            "PHR retained",
            "Skew",
            "Wait p99",
            "Req/s",
        ],
        &rows,
    );
    println!(
        "\nprefix-affinity beats round-robin on cluster PHR at >= 4 replicas: {}",
        if affinity_beats_rr_at_4plus {
            "yes"
        } else {
            "NO — investigate"
        }
    );
}
