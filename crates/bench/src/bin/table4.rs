//! Reproduces **Table 4**: estimated cost savings across all datasets,
//! assuming providers supported automatic caching at arbitrary lengths.
//!
//! §6.3's model: take the prefix hit rates measured in the Table 2
//! experiment and apply each provider's pricing (cached reads discounted,
//! Anthropic writes at a premium). Paper: 20–39% savings under OpenAI
//! pricing and 48–79% under Anthropic pricing.

use llmqo_bench::{harness, report};
use llmqo_costmodel::Pricing;
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_8b();
    let openai = Pricing::gpt4o_mini();
    let anthropic = Pricing::claude35_sonnet();
    // Paper's estimated savings per dataset (OpenAI, Anthropic).
    let paper: [(f64, f64); 7] = [
        (31.0, 73.0),
        (33.0, 73.0),
        (39.0, 79.0),
        (24.0, 48.0),
        (20.0, 55.0),
        (30.0, 60.0),
        (31.0, 63.0),
    ];
    let order = [
        DatasetId::Movies,
        DatasetId::Products,
        DatasetId::Bird,
        DatasetId::Pdmx,
        DatasetId::Beer,
        DatasetId::Fever,
        DatasetId::Squad,
    ];
    let mut rows = Vec::new();
    for (id, (p_oa, p_an)) in order.into_iter().zip(paper) {
        let ds = harness::load(id);
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .expect("T1 or T5 query");
        let orig = harness::run_method(&ds, query, harness::Method::CacheOriginal, &deployment)
            .expect("run")
            .report
            .engine
            .prefix_hit_rate();
        let ggr = harness::run_method(&ds, query, harness::Method::CacheGgr, &deployment)
            .expect("run")
            .report
            .engine
            .prefix_hit_rate();
        rows.push(vec![
            id.name().to_owned(),
            report::pct(orig),
            report::pct(ggr),
            report::pct(openai.estimated_savings(orig, ggr)),
            format!("{p_oa:.0}%"),
            report::pct(anthropic.estimated_savings(orig, ggr)),
            format!("{p_an:.0}%"),
        ]);
    }
    report::section(
        "Table 4: estimated cost savings from measured PHR (paper: OpenAI \
         20-39%, Anthropic 48-79%)",
        &[
            "Dataset",
            "PHR orig",
            "PHR GGR",
            "OpenAI",
            "OpenAI(paper)",
            "Anthropic",
            "Anthropic(paper)",
        ],
        &rows,
    );
}
