//! Reproduces **Figure 6**: the impact of GGR reordering on answer accuracy
//! (§6.4). For every filter query (plus FEVER's RAG query, SQuAD excluded as
//! open-ended), the hand-labeled subset is answered by three simulated
//! models under the original and the GGR orderings, and 10 000 bootstrap
//! resamples give the distribution of exact-match accuracy; the table shows
//! the difference in median accuracy (GGR − original).
//!
//! Paper headline: deltas within ±5% everywhere except Llama-3-8B on FEVER,
//! which *improves* by +14.2% because GGR moves the `claim` field to the end
//! of the prompt, a position the small model prefers.

use llmqo_bench::{harness, report};
use llmqo_core::{Ggr, OriginalOrder, Reorderer};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, LlmQuery, QueryKind};
use llmqo_serve::{GenRequest, ModelProfile, SimLlm};
use llmqo_tokenizer::Tokenizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-row correctness under one ordering, without engine simulation
/// (accuracy is independent of serving time).
fn correctness(
    ds: &Dataset,
    query: &LlmQuery,
    solver: &dyn Reorderer,
    model: &ModelProfile,
    eval_rows: usize,
) -> Vec<bool> {
    let encoded = encode_table(&Tokenizer::new(), &ds.table, query).expect("encode");
    let fds = project_fds(&ds.fds, &encoded.used_cols);
    let solution = solver.reorder(&encoded.reorder, &fds).expect("solve");
    let key_col = query
        .key_field
        .as_deref()
        .and_then(|k| query.fields.iter().position(|f| f == k));
    let truth = ds.truth_fn(query);
    let mut correct = vec![false; eval_rows];
    for rp in &solution.plan.rows {
        if rp.row >= eval_rows {
            continue;
        }
        let pos = match key_col {
            Some(k) if rp.fields.len() > 1 => {
                let p = rp.fields.iter().position(|&f| f as usize == k).unwrap();
                p as f64 / (rp.fields.len() - 1) as f64
            }
            _ => 0.5,
        };
        let t = truth(rp.row);
        let out = model.generate(&GenRequest {
            row_id: rp.row as u64,
            truth: &t,
            label_space: &query.label_space,
            key_field_pos: pos,
        });
        correct[rp.row] = out == t;
    }
    correct
}

/// Median bootstrap accuracy over 10 000 resamples (paper §6.4).
fn bootstrap_median(correct: &[bool], seed: u64) -> f64 {
    let n = correct.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accs: Vec<f64> = (0..10_000)
        .map(|_| {
            let hits = (0..n).filter(|_| correct[rng.random_range(0..n)]).count();
            hits as f64 / n as f64
        })
        .collect();
    accs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    (accs[4999] + accs[5000]) / 2.0
}

fn main() {
    // Per-dataset base accuracy of the small model (larger models add a
    // margin), in the ballpark of the paper's Fig. 6 y-axes.
    let cases: [(DatasetId, f64); 6] = [
        (DatasetId::Movies, 0.82),
        (DatasetId::Products, 0.86),
        (DatasetId::Bird, 0.75),
        (DatasetId::Pdmx, 0.70),
        (DatasetId::Beer, 0.66),
        (DatasetId::Fever, 0.62),
    ];
    let models = [
        ModelProfile::llama3_8b(),
        ModelProfile::llama3_70b(),
        ModelProfile::gpt4o(),
    ];
    let margins = [0.0, 0.08, 0.12];
    // Paper's reported median deltas per model (same dataset order).
    let paper: [[f64; 6]; 3] = [
        [3.0, -1.0, 0.0, 1.0, -6.0, 14.2],
        [4.0, 1.0, 1.0, -1.0, -3.0, 1.7],
        [-3.0, -2.0, -1.0, 4.0, -3.0, -2.4],
    ];

    for (mi, (model, margin)) in models.iter().zip(margins).enumerate() {
        let mut rows = Vec::new();
        for (ci, &(id, base)) in cases.iter().enumerate() {
            let ds = harness::load(id);
            let query = ds
                .query_of_kind(QueryKind::Filter)
                .or_else(|| ds.query_of_kind(QueryKind::Rag))
                .expect("filter or rag query");
            // FEVER has ground-truth labels for all records; other datasets
            // use a 100-row hand-labeled subset (paper §6.4).
            let eval_rows = if id == DatasetId::Fever {
                ds.table.nrows()
            } else {
                100.min(ds.table.nrows())
            };
            let profile = model.clone().with_base_accuracy((base + margin).min(0.95));
            let orig = correctness(&ds, query, &OriginalOrder, &profile, eval_rows);
            let ggr = correctness(&ds, query, &Ggr::default(), &profile, eval_rows);
            let m_orig = bootstrap_median(&orig, 42);
            let m_ggr = bootstrap_median(&ggr, 43);
            rows.push(vec![
                id.name().to_owned(),
                report::pct(m_orig),
                report::pct(m_ggr),
                format!("{:+.1}%", (m_ggr - m_orig) * 100.0),
                format!("{:+.1}%", paper[mi][ci]),
            ]);
        }
        report::section(
            &format!("Fig 6: accuracy, original vs GGR ({})", model.name),
            &["Dataset", "Original", "GGR", "Δ median", "Δ paper"],
            &rows,
        );
    }
    println!(
        "\nheadline: |Δ| stays small for large models; the small model gains \
         substantially on FEVER because GGR moves `claim` to the prompt's end."
    );
}
