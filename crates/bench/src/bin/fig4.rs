//! Reproduces **Figure 4**: multi-LLM invocation (T3) and aggregation (T4)
//! queries on Movies and Products under the three methods, Llama-3-8B/1×L4.
//!
//! Paper headline: GGR is 1.7–2.8× over Cache (Original) and 2.7–3.7× over
//! No Cache. T3's first invocation filters over (mostly distinct) review
//! text, where reordering cannot help, diluting the total speedup.

use llmqo_bench::{harness, report};
use llmqo_datasets::DatasetId;
use llmqo_relational::QueryKind;

fn main() {
    let deployment = harness::deployment_8b();
    let mut rows = Vec::new();
    for id in [DatasetId::Movies, DatasetId::Products] {
        let ds = harness::load(id);

        // T3: filter stage then projection stage over surviving rows.
        let stages = ds.multi_stages().expect("T3 stages exist");
        let mut jct = Vec::new();
        for method in harness::Method::all() {
            let outs = harness::run_multi_method(&ds, stages, method, &deployment).expect("run");
            jct.push(
                outs.iter()
                    .map(|o| o.report.engine.job_completion_time_s)
                    .sum::<f64>(),
            );
        }
        rows.push(vec![
            format!("{} (T3)", id.name()),
            report::secs(jct[0]),
            report::secs(jct[1]),
            report::secs(jct[2]),
            report::speedup(jct[0], jct[2]),
            report::speedup(jct[1], jct[2]),
        ]);
    }
    for id in [DatasetId::Movies, DatasetId::Products] {
        let ds = harness::load(id);
        let query = ds.query_of_kind(QueryKind::Aggregation).expect("T4 exists");
        let mut jct = Vec::new();
        let mut aggs = Vec::new();
        for method in harness::Method::all() {
            let out = harness::run_method(&ds, query, method, &deployment).expect("run");
            jct.push(out.report.engine.job_completion_time_s);
            aggs.push(out.aggregate.unwrap_or(f64::NAN));
        }
        // Aggregates must be identical across methods (semantics preserved).
        assert!(
            (aggs[0] - aggs[2]).abs() < 1e-9,
            "aggregation changed under reordering"
        );
        rows.push(vec![
            format!("{} (T4, avg={:.2})", id.name(), aggs[2]),
            report::secs(jct[0]),
            report::secs(jct[1]),
            report::secs(jct[2]),
            report::speedup(jct[0], jct[2]),
            report::speedup(jct[1], jct[2]),
        ]);
    }
    report::section(
        "Fig 4: Multi-LLM invocation (T3) and aggregation (T4), Llama-3-8B \
         (paper: GGR 1.7-2.8x over Cache (Original), 2.7-3.7x over No Cache)",
        &[
            "Dataset (type)",
            "No Cache",
            "Cache (Original)",
            "Cache (GGR)",
            "GGR vs NoCache",
            "GGR vs Original",
        ],
        &rows,
    );
}
