//! Shared measurement plumbing for the reproduction binaries.

use llmqo_core::{Ggr, OriginalOrder, Reorderer};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{ExecError, LlmQuery, QueryExecutor, QueryOutput};
use llmqo_serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine, SimLlm,
};
use llmqo_tokenizer::Tokenizer;

/// Scaling factor from the `LLMQO_SCALE` environment variable (default 1.0,
/// clamped to `[0.001, 1.0]`). Scaled runs keep each dataset's duplication
/// structure but shrink row counts proportionally.
pub fn scale() -> f64 {
    std::env::var("LLMQO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.001, 1.0)
}

/// Rows to generate for `id` under the current scale.
pub fn rows_for(id: DatasetId) -> usize {
    ((id.paper().nrows as f64) * scale()).round().max(30.0) as usize
}

/// Generates `id` at the current scale.
pub fn load(id: DatasetId) -> Dataset {
    Dataset::generate_with_rows(id, rows_for(id))
}

/// Llama-3-8B on a single L4 (the paper's primary setup).
pub fn deployment_8b() -> Deployment {
    Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4()))
}

/// Llama-3-70B on 8×L4 with tensor parallelism (paper Fig. 5).
pub fn deployment_70b() -> Deployment {
    Deployment::new(
        ModelSpec::llama3_70b(),
        GpuCluster::tensor_parallel(GpuSpec::l4(), 8),
    )
}

/// Llama-3.2-1B on a single L4 (paper Appendix D.2).
pub fn deployment_1b() -> Deployment {
    Deployment::new(ModelSpec::llama3_2_1b(), GpuCluster::single(GpuSpec::l4()))
}

/// The three evaluation arms of the paper's end-to-end figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Prefix cache disabled.
    NoCache,
    /// Prefix cache on, original row/field order.
    CacheOriginal,
    /// Prefix cache on, GGR-reordered schedule.
    CacheGgr,
}

impl Method {
    /// All three arms in the paper's plotting order.
    pub fn all() -> [Method; 3] {
        [Method::NoCache, Method::CacheOriginal, Method::CacheGgr]
    }

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::NoCache => "No Cache",
            Method::CacheOriginal => "Cache (Original)",
            Method::CacheGgr => "Cache (GGR)",
        }
    }
}

/// Runs one query under one method and deployment, returning the output
/// (with its [`ExecutionReport`](llmqo_relational::ExecutionReport)).
///
/// # Errors
///
/// Propagates [`ExecError`] from the executor.
pub fn run_method(
    ds: &Dataset,
    query: &LlmQuery,
    method: Method,
    deployment: &Deployment,
) -> Result<QueryOutput, ExecError> {
    let config = match method {
        Method::NoCache => EngineConfig::no_cache(),
        _ => EngineConfig::default(),
    };
    let engine = SimEngine::new(deployment.clone(), config);
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let truth = ds.truth_fn(query);
    match method {
        Method::CacheGgr => executor.execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth),
        _ => executor.execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth),
    }
}

/// Runs a T3 multi-invocation chain under one method.
///
/// # Errors
///
/// Propagates [`ExecError`] from the executor.
pub fn run_multi_method(
    ds: &Dataset,
    stages: (&LlmQuery, &LlmQuery),
    method: Method,
    deployment: &Deployment,
) -> Result<Vec<QueryOutput>, ExecError> {
    let config = match method {
        Method::NoCache => EngineConfig::no_cache(),
        _ => EngineConfig::default(),
    };
    let engine = SimEngine::new(deployment.clone(), config);
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let truths = (ds.truth_fn(stages.0), ds.truth_fn(stages.1));
    let solver_ggr = Ggr::default();
    let solver_orig = OriginalOrder;
    let solver: &dyn Reorderer = match method {
        Method::CacheGgr => &solver_ggr,
        _ => &solver_orig,
    };
    executor.execute_multi(
        &ds.table,
        &[stages.0, stages.1],
        solver,
        &ds.fds,
        &[&*truths.0, &*truths.1],
    )
}

/// Runs one query with a custom labeler (accuracy experiments).
///
/// # Errors
///
/// Propagates [`ExecError`] from the executor.
pub fn run_with_llm(
    ds: &Dataset,
    query: &LlmQuery,
    method: Method,
    deployment: &Deployment,
    llm: &dyn SimLlm,
) -> Result<QueryOutput, ExecError> {
    let config = match method {
        Method::NoCache => EngineConfig::no_cache(),
        _ => EngineConfig::default(),
    };
    let engine = SimEngine::new(deployment.clone(), config);
    let executor = QueryExecutor::new(&engine, llm, Tokenizer::new());
    let truth = ds.truth_fn(query);
    match method {
        Method::CacheGgr => executor.execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth),
        _ => executor.execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmqo_relational::QueryKind;

    #[test]
    fn scale_env_round_trips() {
        // Default (no env in tests unless set) is within the clamp.
        let s = scale();
        assert!((0.001..=1.0).contains(&s));
    }

    #[test]
    fn methods_have_labels() {
        for m in Method::all() {
            assert!(!m.label().is_empty());
        }
    }

    #[test]
    fn run_method_smoke() {
        let ds = Dataset::generate_with_rows(DatasetId::Beer, 60);
        let q = ds.query_of_kind(QueryKind::Filter).unwrap();
        let dep = deployment_8b();
        let out = run_method(&ds, q, Method::CacheGgr, &dep).unwrap();
        assert_eq!(out.outputs.len(), 60);
        let out2 = run_method(&ds, q, Method::NoCache, &dep).unwrap();
        assert_eq!(out2.report.engine.cached_prompt_tokens, 0);
    }
}
