//! Plain-text table rendering for the reproduction binaries.
//!
//! Every binary prints its measurements next to the paper's reported values
//! so divergence is visible at a glance; `EXPERIMENTS.md` records the
//! results.

/// Renders an aligned ASCII table.
///
/// # Examples
///
/// ```
/// let t = llmqo_bench::report::render_table(
///     &["dataset", "PHR"],
///     &[vec!["Movies".into(), "86%".into()]],
/// );
/// assert!(t.contains("Movies"));
/// assert!(t.contains("dataset"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup ratio like the paper's figure annotations.
pub fn speedup(slow: f64, fast: f64) -> String {
    if fast <= 0.0 {
        return "n/a".to_owned();
    }
    format!("{:.1}x", slow / fast)
}

/// Formats seconds compactly.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Prints a titled section with a rendered table.
pub fn section(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    print!("{}", render_table(headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_contains_cells() {
        let t = render_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer cell".into(), "z".into()],
            ],
        );
        assert!(t.contains("| x           | y           |") || t.contains("x"));
        assert!(t.contains("longer cell"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn short_rows_padded() {
        let t = render_table(&["a", "b"], &[vec!["only".into()]]);
        assert!(t.contains("only"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.857), "85.7%");
        assert_eq!(speedup(10.0, 4.0), "2.5x");
        assert_eq!(speedup(1.0, 0.0), "n/a");
        assert_eq!(secs(123.4), "123s");
        assert_eq!(secs(2.34), "2.3s");
        assert_eq!(secs(0.5), "500.0ms");
    }
}
