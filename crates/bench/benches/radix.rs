//! Criterion benches for the paged prefix cache: admissions with shared and
//! cold prefixes, probe throughput, and eviction churn.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use llmqo_serve::{CacheConfig, PrefixCache};

fn config(capacity_blocks: usize) -> CacheConfig {
    CacheConfig {
        block_size: 16,
        capacity_blocks,
        enabled: true,
        share_in_flight: true,
    }
}

fn prompt(shared: usize, tag: u32, total: usize) -> Vec<u32> {
    let mut p: Vec<u32> = (0..shared as u32).collect();
    p.extend((0..(total - shared) as u32).map(|i| 1_000_000 + tag * 4096 + i));
    p
}

fn bench_admit(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix/admit-300tok");
    group.bench_function("shared-prefix", |b| {
        b.iter_batched(
            || PrefixCache::new(config(50_000)),
            |mut cache| {
                for i in 0..256u32 {
                    let alloc = cache.try_admit(&prompt(224, i, 300), 8).unwrap();
                    cache.mark_computed(&alloc, 300);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cold", |b| {
        b.iter_batched(
            || PrefixCache::new(config(50_000)),
            |mut cache| {
                for i in 0..256u32 {
                    let alloc = cache.try_admit(&prompt(0, i, 300), 8).unwrap();
                    cache.mark_computed(&alloc, 300);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut cache = PrefixCache::new(config(50_000));
    let p = prompt(512, 0, 512);
    let alloc = cache.try_admit(&p, 0).unwrap();
    cache.mark_computed(&alloc, 512);
    c.bench_function("radix/probe-512tok", |b| b.iter(|| cache.probe(&p)));
}

fn bench_eviction_churn(c: &mut Criterion) {
    c.bench_function("radix/churn-small-cache", |b| {
        b.iter_batched(
            || PrefixCache::new(config(128)),
            |mut cache| {
                // Working set far exceeds capacity: constant LRU eviction.
                for i in 0..512u32 {
                    if let Some(alloc) = cache.try_admit(&prompt(32, i, 96), 4) {
                        cache.mark_computed(&alloc, 96);
                        cache.release(alloc);
                    }
                }
                cache.stats().evictions
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_admit, bench_probe, bench_eviction_churn);
criterion_main!(benches);
