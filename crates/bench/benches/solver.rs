//! Criterion benches for the reordering solvers: GGR (paper configuration)
//! against the fixed-order baselines and the frozen pre-columnar
//! `GgrReference` on a realistic join-shaped table, plus OPHR (and its
//! reference) on a small table (it is exponential; Table 6 covers larger
//! samples). The reference arms keep the columnar core's speedup visible in
//! every bench run; `perf_solver` writes the same comparison to
//! `BENCH_solver.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use llmqo_core::{
    FunctionalDeps, Ggr, GgrReference, Ophr, OphrReference, OriginalOrder, Reorderer, SortedFixed,
    StatFixed,
};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_tokenizer::Tokenizer;

fn movies_table(rows: usize) -> (llmqo_core::ReorderTable, FunctionalDeps) {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, rows);
    let q = ds.query_of_kind(QueryKind::Filter).unwrap();
    let e = encode_table(&Tokenizer::new(), &ds.table, q).unwrap();
    let fds = project_fds(&ds.fds, &e.used_cols);
    (e.reorder, fds)
}

fn bench_solvers(c: &mut Criterion) {
    let (table, fds) = movies_table(1000);
    let mut group = c.benchmark_group("solver/movies-1000");
    group.sample_size(10);
    for solver in [
        &OriginalOrder as &dyn Reorderer,
        &SortedFixed,
        &StatFixed,
        &GgrReference::default(),
        &Ggr::default(),
    ] {
        group.bench_function(solver.name(), |b| {
            b.iter_batched(
                || (),
                |_| solver.reorder(&table, &fds).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_ggr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/ggr-scaling");
    group.sample_size(10);
    for rows in [250usize, 1000, 4000] {
        let (table, fds) = movies_table(rows);
        group.bench_function(format!("rows-{rows}"), |b| {
            b.iter(|| Ggr::default().reorder(&table, &fds).unwrap())
        });
    }
    group.finish();
}

fn bench_ophr_small(c: &mut Criterion) {
    let (full, fds) = movies_table(64);
    let table = full.head(16);
    let mut group = c.benchmark_group("solver/ophr-16-rows");
    group.sample_size(10);
    group.bench_function("ophr", |b| {
        b.iter(|| Ophr::unbounded().reorder(&table, &fds).unwrap())
    });
    group.bench_function("ophr-reference", |b| {
        b.iter(|| OphrReference::unbounded().reorder(&table, &fds).unwrap())
    });
    group.bench_function("ggr", |b| {
        b.iter(|| Ggr::default().reorder(&table, &fds).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_ggr_scaling, bench_ophr_small);
criterion_main!(benches);
