//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * GGR fall-back ordering: adaptive partitioning vs greedy prefix vs the
//!   paper's plain statistics score (quality measured as achieved PHC,
//!   reported through bench labels; timing measured by criterion).
//! * Functional dependencies on/off.
//! * Row-recursion depth sweep.
//! * Engine KV block size sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use llmqo_core::{phc_of_plan, FallbackOrdering, FunctionalDeps, Ggr, GgrConfig, Reorderer};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine, SimRequest,
};
use llmqo_tokenizer::Tokenizer;

fn pdmx(rows: usize) -> (llmqo_core::ReorderTable, FunctionalDeps) {
    let ds = Dataset::generate_with_rows(DatasetId::Pdmx, rows);
    let q = ds.query_of_kind(QueryKind::Filter).unwrap();
    let e = encode_table(&Tokenizer::new(), &ds.table, q).unwrap();
    let fds = project_fds(&ds.fds, &e.used_cols);
    (e.reorder, fds)
}

fn bench_fallbacks(c: &mut Criterion) {
    let (table, fds) = pdmx(800);
    let mut group = c.benchmark_group("ablation/fallback-pdmx-800");
    group.sample_size(10);
    for (name, fallback) in [
        ("adaptive", FallbackOrdering::Adaptive),
        ("greedy-prefix", FallbackOrdering::GreedyPrefix),
        ("stat-fixed", FallbackOrdering::StatFixed),
    ] {
        let solver = Ggr::new(GgrConfig {
            fallback,
            ..GgrConfig::paper()
        });
        let phc = phc_of_plan(&table, &solver.reorder(&table, &fds).unwrap().plan).phc;
        group.bench_function(format!("{name}-phc-{phc}"), |b| {
            b.iter(|| solver.reorder(&table, &fds).unwrap())
        });
    }
    group.finish();
}

fn bench_fds(c: &mut Criterion) {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 800);
    let q = ds.query_of_kind(QueryKind::Filter).unwrap();
    let e = encode_table(&Tokenizer::new(), &ds.table, q).unwrap();
    let fds = project_fds(&ds.fds, &e.used_cols);
    let mut group = c.benchmark_group("ablation/fds-movies-800");
    group.sample_size(10);
    for (name, use_fds) in [("with-fds", true), ("without-fds", false)] {
        let solver = Ggr::new(GgrConfig {
            use_fds,
            ..GgrConfig::paper()
        });
        let phc = phc_of_plan(&e.reorder, &solver.reorder(&e.reorder, &fds).unwrap().plan).phc;
        group.bench_function(format!("{name}-phc-{phc}"), |b| {
            b.iter(|| solver.reorder(&e.reorder, &fds).unwrap())
        });
    }
    group.finish();
}

fn bench_depth_sweep(c: &mut Criterion) {
    let (table, fds) = pdmx(800);
    let mut group = c.benchmark_group("ablation/row-depth-pdmx-800");
    group.sample_size(10);
    for depth in [0usize, 2, 4, 8, 16] {
        let solver = Ggr::new(GgrConfig {
            max_row_depth: Some(depth),
            ..GgrConfig::paper()
        });
        let phc = phc_of_plan(&table, &solver.reorder(&table, &fds).unwrap().plan).phc;
        group.bench_function(format!("depth-{depth}-phc-{phc}"), |b| {
            b.iter(|| solver.reorder(&table, &fds).unwrap())
        });
    }
    group.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let deployment = Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4()));
    let reqs: Vec<SimRequest> = (0..500)
        .map(|i| {
            let mut t: Vec<u32> = (0..200).collect();
            t.extend((0..80u32).map(|j| 1_000_000 + (i as u32) * 4096 + j));
            SimRequest::from_tokens(i, t, 4)
        })
        .collect();
    let mut group = c.benchmark_group("ablation/block-size");
    group.sample_size(10);
    for bs in [8usize, 16, 32, 64] {
        let engine = SimEngine::new(
            deployment.clone(),
            EngineConfig {
                block_size: bs,
                ..EngineConfig::default()
            },
        );
        let hit = engine.run(&reqs).unwrap().prefix_hit_rate();
        group.bench_function(format!("bs-{bs}-hit-{:.0}pct", hit * 100.0), |b| {
            b.iter(|| engine.run(&reqs).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fallbacks,
    bench_fds,
    bench_depth_sweep,
    bench_block_size
);
criterion_main!(benches);
