//! Criterion benches for the serving simulator itself: simulated-job
//! wall-clock per real second, under cached and uncached configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use llmqo_serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine, SimRequest,
};

fn requests(n: usize, shared: usize, total: usize, output: u32) -> Vec<SimRequest> {
    (0..n)
        .map(|i| {
            let mut t: Vec<u32> = (0..shared as u32).collect();
            t.extend((0..(total - shared) as u32).map(|j| 1_000_000 + (i as u32) * 4096 + j));
            SimRequest::from_tokens(i, t, output)
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let deployment = Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4()));
    let reqs = requests(1000, 192, 280, 4);
    let mut group = c.benchmark_group("engine/1000req-280tok");
    group.sample_size(10);
    group.bench_function("prefix-cache", |b| {
        let engine = SimEngine::new(deployment.clone(), EngineConfig::default());
        b.iter(|| engine.run(&reqs).unwrap())
    });
    group.bench_function("no-cache", |b| {
        let engine = SimEngine::new(deployment.clone(), EngineConfig::no_cache());
        b.iter(|| engine.run(&reqs).unwrap())
    });
    group.bench_function("strict-vllm-v0", |b| {
        let engine = SimEngine::new(
            deployment.clone(),
            EngineConfig {
                in_flight_sharing: false,
                ..EngineConfig::default()
            },
        );
        b.iter(|| engine.run(&reqs).unwrap())
    });
    // The frozen pre-rewrite per-token loop, as a before/after arm (the
    // `perf_engine` bin measures the same comparison at larger scales).
    group.bench_function("reference-session", |b| {
        let engine = SimEngine::new(deployment.clone(), EngineConfig::default());
        b.iter(|| {
            let mut s = engine.reference_session().unwrap();
            for r in &reqs {
                s.enqueue(r.clone());
            }
            while s.step().unwrap() {}
            s.finish()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
