//! Criterion benches for PHC evaluation (Eq. 1–2): the ground-truth scorer
//! used to validate every solver's claims.

use criterion::{criterion_group, criterion_main, Criterion};
use llmqo_core::{phc_of_plan, Ggr, OriginalOrder, Reorderer};
use llmqo_datasets::{Dataset, DatasetId};
use llmqo_relational::{encode_table, project_fds, QueryKind};
use llmqo_tokenizer::Tokenizer;

fn bench_phc(c: &mut Criterion) {
    let ds = Dataset::generate_with_rows(DatasetId::Products, 2000);
    let q = ds.query_of_kind(QueryKind::Filter).unwrap();
    let e = encode_table(&Tokenizer::new(), &ds.table, q).unwrap();
    let fds = project_fds(&ds.fds, &e.used_cols);
    let identity = OriginalOrder.reorder(&e.reorder, &fds).unwrap();
    let ggr = Ggr::default().reorder(&e.reorder, &fds).unwrap();

    let mut group = c.benchmark_group("phc/products-2000");
    group.bench_function("identity-plan", |b| {
        b.iter(|| phc_of_plan(&e.reorder, &identity.plan))
    });
    group.bench_function("ggr-plan", |b| {
        b.iter(|| phc_of_plan(&e.reorder, &ggr.plan))
    });
    group.finish();
}

criterion_group!(benches, bench_phc);
criterion_main!(benches);
