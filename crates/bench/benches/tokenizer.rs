//! Criterion benches for the deterministic tokenizer (the hot path of table
//! encoding and dataset calibration).

use criterion::{criterion_group, criterion_main, Criterion};
use llmqo_tokenizer::Tokenizer;

fn bench_tokenize(c: &mut Criterion) {
    let tok = Tokenizer::new();
    let prose = "The quiet mountain river follows an ancient stone path toward evening \
                 light, while the small village market opens before dawn and farmers \
                 carry baskets of fresh bread and warm honey through narrow streets. "
        .repeat(16);
    let mut group = c.benchmark_group("tokenizer");
    group.throughput(criterion::Throughput::Bytes(prose.len() as u64));
    group.bench_function("tokenize-3kb", |b| b.iter(|| tok.tokenize(&prose)));
    group.bench_function("count-3kb", |b| b.iter(|| tok.count(&prose)));
    group.finish();
}

criterion_group!(benches, bench_tokenize);
criterion_main!(benches);
