//! Differential contract of the overload-survival layer: inert
//! [`AdmissionPolicy`]/[`ScalePolicy`] configurations are **byte-identical**
//! to the ungated dispatchers ([`ClusterSim::run`] /
//! [`ClusterSim::run_with_faults`]); under genuine overload the shed ledger
//! reconciles exactly (`completed + shed == offered` fault-free,
//! `succeeded + failed + shed == offered` under chaos), high-priority
//! tenants lose zero requests while best-effort work is shed
//! deterministically, the elastic autoscaler warms and drains replicas as a
//! seeded closed loop, and every mode agrees byte for byte with its
//! single-stepped oracle. One layer up, a statement that dies mid-flight
//! resumes from a [`StatementCheckpoint`] with byte-identical final rows
//! and strictly fewer re-issued LLM calls.

mod common;

use common::{cluster_sim as sim, engine, prioritized_workload as workload, routers, skewed_truth};
use llmqo::cluster::{
    AdmissionPolicy, ArrivalProcess, FaultPlan, LeastLoaded, OverloadPolicy, PrefixAffinity,
    RetryPolicy, RoundRobin, ScalePolicy,
};
use llmqo::core::Ggr;
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{OptimizerConfig, QueryExecutor, SqlResult, SqlRunner, StatementFaults};
use llmqo::serve::OracleLlm;
use llmqo::tokenizer::Tokenizer;

// ---------------------------------------------------------------------------
// Inert identity
// ---------------------------------------------------------------------------

/// The differential spine: a default (inert) `AdmissionPolicy` through
/// `run_admitted` must take the exact ungated code path, and a default
/// `OverloadPolicy` through `run_overloaded` must reproduce
/// `run_with_faults` byte for byte — for every router, with and without
/// chaos underneath.
#[test]
fn inert_overload_policies_are_byte_identical_to_ungated_runs() {
    let mut requests = workload(12, 6, 4);
    ArrivalProcess::Poisson {
        rate_rps: 50.0,
        seed: 3,
    }
    .assign(&mut requests);
    for (replicas, queue_cap) in [(3usize, 16usize), (3, 1)] {
        let sim = sim(replicas, queue_cap);
        for mut router in routers() {
            let seed_run = sim.run(router.as_mut(), &requests).expect("seed");
            let admitted = sim
                .run_admitted(router.as_mut(), &requests, &AdmissionPolicy::default())
                .expect("inert admitted");
            assert_eq!(seed_run, admitted, "inert AdmissionPolicy diverged");
            assert!(!admitted.shed.engaged() && !admitted.scaling.engaged());

            let plan = FaultPlan::seeded(42)
                .crash_restart(0, 0.08, 0.3)
                .slowdown(1, 0.05, 0.4, 3.0)
                .transient_errors_ppm(60_000);
            let retry = RetryPolicy::retries(4).with_hedging(0.5);
            let chaos = sim
                .run_with_faults(router.as_mut(), &requests, &plan, &retry)
                .expect("chaos");
            let overloaded = sim
                .run_overloaded(
                    router.as_mut(),
                    &requests,
                    &plan,
                    &retry,
                    &OverloadPolicy::default(),
                )
                .expect("inert overloaded");
            assert_eq!(chaos, overloaded, "inert OverloadPolicy diverged");
            assert!(!overloaded.shed.engaged() && !overloaded.scaling.engaged());
        }
    }
}

// ---------------------------------------------------------------------------
// Shedding under 2× overload
// ---------------------------------------------------------------------------

/// A 2× overload against a bounded admission queue: the ledger reconciles
/// exactly (`completed + shed == offered`), only best-effort work is shed
/// (zero high-priority loss), the shed p99 queue wait stays far below the
/// unprotected collapse, and macro-stepped ≡ single-stepped byte for byte.
#[test]
fn bounded_admission_sheds_only_best_effort_and_reconciles() {
    // Calibrate "2×": measure the batch service rate, then arrive at twice
    // it. The measurement run is itself deterministic.
    let sim = sim(2, 4);
    let probe = sim
        .run(&mut LeastLoaded, &workload(12, 6, 0))
        .expect("probe");
    let rate = 2.0 * probe.throughput_rps();
    let mut requests = workload(20, 6, 4);
    ArrivalProcess::Poisson {
        rate_rps: rate,
        seed: 17,
    }
    .assign(&mut requests);

    let unprotected = sim.run(&mut LeastLoaded, &requests).expect("unprotected");
    assert_eq!(unprotected.completed, requests.len());

    let policy = AdmissionPolicy::bounded(6);
    let shed_run = sim
        .run_admitted(&mut LeastLoaded, &requests, &policy)
        .expect("admitted");
    let single = sim
        .run_admitted_single_stepped(&mut LeastLoaded, &requests, &policy)
        .expect("single-stepped");
    assert_eq!(shed_run, single, "admission stepping modes diverged");

    let shed = &shed_run.shed;
    assert!(shed.engaged());
    assert_eq!(shed.offered, requests.len());
    assert_eq!(
        shed_run.completed + shed.shed,
        shed.offered,
        "shed ledger must reconcile exactly"
    );
    assert!(shed.shed > 0, "2x overload against depth 6 must shed");
    assert_eq!(
        shed.shed_queue_full + shed.shed_kv_pressure + shed.shed_tenant_quota,
        shed.shed,
        "per-reason counters must partition the shed total"
    );
    assert_eq!(
        shed.max_shed_priority, 0,
        "a priority-1 request was shed — priority shedding is broken"
    );
    // Every priority-1 request was admitted and (fault-free) completed.
    let premium = requests.iter().filter(|r| r.priority == 1).count();
    assert!(premium > 0);
    assert!(shed_run.completed >= premium);
    // Bounded pending depth ⇒ bounded queue wait; the unprotected run, fed
    // at 2× service rate, collapses into queue waits that grow with the
    // backlog.
    assert!(
        shed_run.queue_wait_p99_s < unprotected.queue_wait_p99_s / 2.0,
        "shedding must bound queue wait (shed p99 {} vs unprotected p99 {})",
        shed_run.queue_wait_p99_s,
        unprotected.queue_wait_p99_s
    );

    // Determinism: byte-identical on re-run.
    let again = sim
        .run_admitted(&mut LeastLoaded, &requests, &policy)
        .expect("rerun");
    assert_eq!(shed_run, again);
}

/// The KV-occupancy gate: with the watermark set below the workload's
/// observed peak occupancy the gate engages (every shed is attributed to
/// it) and the ledger still reconciles.
#[test]
fn kv_gate_sheds_on_occupancy() {
    let sim = sim(2, 16);
    let mut requests = workload(16, 6, 0);
    ArrivalProcess::Poisson {
        rate_rps: 300.0,
        seed: 5,
    }
    .assign(&mut requests);
    // Calibrate the gate off the unprotected run's occupancy gauges: half
    // the fleet-mean KV utilization observed at placement instants is
    // comfortably inside the occupancy range the loaded fleet sweeps
    // through, so arrivals land above it.
    let probe = sim.run(&mut LeastLoaded, &requests).expect("probe");
    let mean = probe
        .replicas
        .iter()
        .map(|r| r.occupancy.mean_utilization())
        .sum::<f64>()
        / probe.replicas.len() as f64;
    assert!(mean > 0.0, "workload never occupied a KV block");
    // Queue depth effectively unbounded: only the KV gate can shed.
    let policy = AdmissionPolicy::default().with_kv_gate((mean / 2.0).min(1.0));
    let report = sim
        .run_admitted(&mut LeastLoaded, &requests, &policy)
        .expect("kv-gated run");
    assert_eq!(report.completed + report.shed.shed, requests.len());
    assert!(
        report.shed.shed > 0,
        "a KV gate at half the mean occupancy ({mean:.4}) must engage under load"
    );
    assert_eq!(report.shed.shed_kv_pressure, report.shed.shed);
    let single = sim
        .run_admitted_single_stepped(&mut LeastLoaded, &requests, &policy)
        .expect("single");
    assert_eq!(report, single);
}

/// Per-tenant quotas: a flooding tenant is capped at its quota of pending
/// admissions while the quiet tenant sails through untouched.
#[test]
fn tenant_quota_caps_the_flooding_tenant() {
    let sim = sim(2, 4);
    // Tenant 0 floods (priority 0); every 6th request is the quiet premium
    // tenant 1 (priority 1) — 18 premium requests in total, under the
    // quota, while the ~90-request flood is far over it.
    let mut requests = workload(18, 6, 6);
    ArrivalProcess::Poisson {
        rate_rps: 250.0,
        seed: 23,
    }
    .assign(&mut requests);
    let policy = AdmissionPolicy::default().with_tenant_quota(20);
    let report = sim
        .run_admitted(&mut LeastLoaded, &requests, &policy)
        .expect("quota run");
    assert_eq!(report.completed + report.shed.shed, requests.len());
    assert!(
        report.shed.shed_tenant_quota > 0,
        "the flood must hit quota"
    );
    assert_eq!(
        report.shed.max_shed_priority, 0,
        "only the flooding tenant's best-effort work may be shed"
    );
    let premium = requests.iter().filter(|r| r.tenant == 1).count();
    assert!(report.completed >= premium);
}

// ---------------------------------------------------------------------------
// Elastic autoscaling
// ---------------------------------------------------------------------------

/// Sustained queue pressure scales the fleet up: cold replicas are warmed
/// and joined mid-job, every request completes (no shedding configured),
/// the whole control loop is deterministic, and macro ≡ single-stepped.
#[test]
fn autoscaler_warms_replicas_under_queue_pressure() {
    let sim = sim(1, 4);
    let probe = sim
        .run(&mut LeastLoaded, &workload(8, 6, 0))
        .expect("probe");
    let mut requests = workload(16, 6, 0);
    ArrivalProcess::Poisson {
        rate_rps: 2.0 * probe.throughput_rps(),
        seed: 31,
    }
    .assign(&mut requests);
    let scale = ScalePolicy::elastic(1, 4)
        .reacting(0.3, 0.02)
        .with_cadence(0.1, 0.5)
        .with_warmup(0.25)
        .with_warmup_jitter(0.2, 7);
    let overload = OverloadPolicy::default().with_scale(scale);
    let plan = FaultPlan::default();
    let retry = RetryPolicy::disabled();
    let scaled = sim
        .run_overloaded(&mut LeastLoaded, &requests, &plan, &retry, &overload)
        .expect("scaled run");
    assert_eq!(
        scaled.completed,
        requests.len(),
        "scaling must lose nothing"
    );
    assert!(scaled.scaling.engaged());
    assert!(
        scaled.scaling.scale_ups >= 1,
        "2x overload on one replica must scale up: {:?}",
        scaled.scaling
    );
    assert!(scaled.scaling.peak_replicas > 1);
    assert!(scaled.scaling.checks > 0);

    let single = sim
        .run_overloaded_single_stepped(&mut LeastLoaded, &requests, &plan, &retry, &overload)
        .expect("single-stepped");
    assert_eq!(scaled, single, "scaling stepping modes diverged");
    let again = sim
        .run_overloaded(&mut LeastLoaded, &requests, &plan, &retry, &overload)
        .expect("rerun");
    assert_eq!(scaled, again, "autoscaler is nondeterministic");

    // The warmed fleet beats the frozen single replica on makespan.
    let frozen = sim.run(&mut LeastLoaded, &requests).expect("frozen");
    assert!(
        scaled.makespan_s < frozen.makespan_s,
        "scaling up must shorten the job ({} vs {})",
        scaled.makespan_s,
        frozen.makespan_s
    );
}

/// Low KV occupancy drains replicas: a sparse trickle over a large fleet
/// scales down towards `min_replicas` without losing a single request, and
/// departed replicas are not accounted as unavailability.
#[test]
fn autoscaler_drains_idle_replicas_at_low_occupancy() {
    let sim = sim(4, 16);
    let mut requests = workload(10, 4, 0);
    ArrivalProcess::Poisson {
        rate_rps: 4.0,
        seed: 13,
    }
    .assign(&mut requests);
    let scale = ScalePolicy::elastic(1, 4)
        .reacting(5.0, 0.9)
        .with_cadence(0.25, 0.5);
    let overload = OverloadPolicy::default().with_scale(scale);
    let report = sim
        .run_overloaded(
            &mut LeastLoaded,
            &requests,
            &FaultPlan::default(),
            &RetryPolicy::disabled(),
            &overload,
        )
        .expect("drain run");
    assert_eq!(report.completed, requests.len(), "drain must lose nothing");
    assert!(
        report.scaling.scale_downs >= 1,
        "a trickle over 4 replicas must drain some: {:?}",
        report.scaling
    );
    assert!(report.scaling.low_replicas < 4);
    assert!(
        !report.faults.engaged() && report.faults.unavailability_windows == 0,
        "scale-down departures must not pollute the fault ledger"
    );
    let single = sim
        .run_overloaded_single_stepped(
            &mut LeastLoaded,
            &requests,
            &FaultPlan::default(),
            &RetryPolicy::disabled(),
            &overload,
        )
        .expect("single");
    assert_eq!(report, single);
}

/// The full composition: chaos (crash + slowdown + retries) under a gating
/// admission policy and an elastic autoscaler. The three-way ledger
/// reconciles and both stepping modes agree byte for byte.
#[test]
fn chaos_shedding_and_scaling_compose_and_reconcile() {
    let sim = sim(2, 4);
    let mut requests = workload(16, 6, 4);
    ArrivalProcess::Poisson {
        rate_rps: 120.0,
        seed: 29,
    }
    .assign(&mut requests);
    let plan = FaultPlan::seeded(11)
        .crash_restart(0, 0.1, 0.4)
        .slowdown(1, 0.05, 0.5, 2.0);
    let retry = RetryPolicy::retries(3).with_hedging(0.6);
    let overload = OverloadPolicy::admission(AdmissionPolicy::bounded(8)).with_scale(
        ScalePolicy::elastic(1, 4)
            .reacting(0.25, 0.05)
            .with_cadence(0.1, 0.4)
            .with_warmup(0.3),
    );
    let report = sim
        .run_overloaded(
            &mut PrefixAffinity::default(),
            &requests,
            &plan,
            &retry,
            &overload,
        )
        .expect("composed run");
    let fs = &report.faults;
    assert!(fs.engaged());
    assert_eq!(
        fs.succeeded + fs.failed + report.shed.shed,
        fs.offered,
        "three-way ledger must reconcile: {fs:?} + shed {}",
        report.shed.shed
    );
    assert_eq!(report.shed.offered, requests.len());
    assert_eq!(
        report.shed.max_shed_priority, 0,
        "premium traffic must survive chaos + overload"
    );
    let single = sim
        .run_overloaded_single_stepped(
            &mut PrefixAffinity::default(),
            &requests,
            &plan,
            &retry,
            &overload,
        )
        .expect("single");
    assert_eq!(report, single, "composed stepping modes diverged");
}

/// Invalid policies are rejected up front with a typed error.
#[test]
fn invalid_overload_policies_are_rejected() {
    let requests = workload(2, 2, 0);
    let zero_depth = AdmissionPolicy {
        max_pending: Some(0),
        ..AdmissionPolicy::default()
    };
    let err = sim(2, 4)
        .run_admitted(&mut RoundRobin, &requests, &zero_depth)
        .expect_err("zero queue depth must be rejected");
    assert!(err
        .to_string()
        .contains("invalid admission or scale policy"));

    // max_replicas below the initial fleet contradicts the starting state.
    let shrunk = OverloadPolicy::default().with_scale(ScalePolicy::elastic(1, 1));
    let err = sim(2, 4)
        .run_overloaded(
            &mut RoundRobin,
            &requests,
            &FaultPlan::default(),
            &RetryPolicy::disabled(),
            &shrunk,
        )
        .expect_err("max below initial fleet must be rejected");
    assert!(err
        .to_string()
        .contains("invalid admission or scale policy"));
}

// ---------------------------------------------------------------------------
// Statement checkpoint/resume
// ---------------------------------------------------------------------------

/// Result equality on every sim-deterministic field *except* engine/opt
/// reports (a resumed run deliberately does less engine work).
fn assert_rows_identical(a: &SqlResult, b: &SqlResult, context: &str) {
    assert_eq!(a.columns, b.columns, "{context}: columns");
    assert_eq!(a.rows, b.rows, "{context}: rows");
    assert_eq!(a.aggregate, b.aggregate, "{context}: aggregate");
}

fn llm_calls(r: &SqlResult) -> u64 {
    r.stages.iter().map(|s| s.report.opt.llm_calls).sum()
}

/// Restoring an **empty** checkpoint is inert: the run is byte-identical to
/// a clean baseline (engine reports included) on all seven tier-1 datasets.
#[test]
fn empty_checkpoint_restore_is_byte_identical_on_all_seven_datasets() {
    let solver = Ggr::default();
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);

        let eng_a = engine();
        let exec_a = QueryExecutor::new(&eng_a, &OracleLlm, Tokenizer::new());
        let mut runner_a = SqlRunner::new(&exec_a, &solver).with_optimizer(OptimizerConfig::all());
        runner_a.register(name, &ds.table, &ds.fds);
        let baseline = runner_a.run(sql, &skewed_truth).expect("baseline");

        let eng_b = engine();
        let exec_b = QueryExecutor::new(&eng_b, &OracleLlm, Tokenizer::new());
        let empty = exec_b.checkpoint();
        assert!(empty.is_empty());
        let mut runner_b = SqlRunner::new(&exec_b, &solver).with_optimizer(OptimizerConfig::all());
        runner_b.register(name, &ds.table, &ds.fds);
        runner_b.restore(&empty);
        let restored = runner_b.run(sql, &skewed_truth).expect("restored");

        assert_rows_identical(&baseline, &restored, id.name());
        assert_eq!(llm_calls(&baseline), llm_calls(&restored), "{}", id.name());
        for (x, y) in baseline.stages.iter().zip(&restored.stages) {
            assert_eq!(x.report.engine, y.report.engine, "{}: engine", id.name());
            assert_eq!(x.report.opt, y.report.opt, "{}: opt", id.name());
        }
    }
}

/// The resume contract: a statement killed mid-flight (strict fault mode)
/// leaves its completed batches in the answer cache; a checkpoint of that
/// cache restored into a fresh runner re-runs the statement to
/// **byte-identical rows** while re-issuing **strictly fewer** LLM calls
/// than a cold run. Checkpoints round-trip deterministically.
#[test]
fn mid_statement_crash_resumes_from_checkpoint_with_fewer_llm_calls() {
    // The Bird case runs lazily under its LIMIT: several batches per
    // filter, with cache inserts landing after each completed batch — the
    // shape that makes a mid-statement death checkpointable.
    let ds = Dataset::generate_with_rows(DatasetId::Bird, 120);
    let (_, name, sql) = common::seven_dataset_cases()[2];
    let solver = Ggr::default();

    // Clean baseline on a cold executor.
    let eng_a = engine();
    let exec_a = QueryExecutor::new(&eng_a, &OracleLlm, Tokenizer::new());
    let mut runner_a = SqlRunner::new(&exec_a, &solver).with_optimizer(OptimizerConfig::all());
    runner_a.register(name, &ds.table, &ds.fds);
    let baseline = runner_a.run(sql, &skewed_truth).expect("baseline");
    let cold_calls = llm_calls(&baseline);
    assert!(cold_calls > 0);

    // The doomed run: strict faults with no retry budget kill the
    // statement mid-flight. The exact death point depends on the fault
    // seed, so scan a deterministic grid for a death that lands *after*
    // the first completed batch (a death in batch one leaves nothing to
    // checkpoint, which is correct but not the scenario under test).
    let mut found = None;
    'search: for ppm in [40_000, 80_000, 150_000] {
        for seed in 0..24 {
            let eng_b = engine();
            let exec_b = QueryExecutor::new(&eng_b, &OracleLlm, Tokenizer::new());
            let doomed_opt = OptimizerConfig {
                faults: Some(StatementFaults::new(ppm, seed).with_attempts(1).strict()),
                ..OptimizerConfig::all()
            };
            let mut runner_b = SqlRunner::new(&exec_b, &solver).with_optimizer(doomed_opt);
            runner_b.register(name, &ds.table, &ds.fds);
            if runner_b.run(sql, &skewed_truth).is_err() {
                let ckpt = runner_b.checkpoint();
                if !ckpt.is_empty() {
                    // Checkpoints are deterministic: exporting twice is
                    // identical.
                    assert_eq!(ckpt, runner_b.checkpoint());
                    found = Some(ckpt);
                    break 'search;
                }
            }
        }
    }
    let ckpt = found.expect("no fault seed killed the statement after its first completed batch");

    // Resume on a fresh engine + executor from the checkpoint, faults off.
    let eng_c = engine();
    let exec_c = QueryExecutor::new(&eng_c, &OracleLlm, Tokenizer::new());
    exec_c.restore(&ckpt);
    let mut runner_c = SqlRunner::new(&exec_c, &solver).with_optimizer(OptimizerConfig::all());
    runner_c.register(name, &ds.table, &ds.fds);
    let resumed = runner_c.run(sql, &skewed_truth).expect("resumed run");

    assert_rows_identical(&baseline, &resumed, "resume");
    let resumed_calls = llm_calls(&resumed);
    assert!(
        resumed_calls < cold_calls,
        "resume must re-issue strictly fewer LLM calls ({resumed_calls} vs {cold_calls})"
    );
    let hits: u64 = resumed.stages.iter().map(|s| s.report.opt.cache_hits).sum();
    assert!(
        hits > 0,
        "the resumed run must answer rows from the checkpoint"
    );
}

/// Checkpointing composes with bounded caches: a budgeted executor exports
/// only what it retained, the snapshot absorbs cleanly, and the resumed
/// statement still matches row for row (hits merely become misses).
#[test]
fn checkpoint_respects_cache_budget_and_still_matches() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 120);
    let (_, name, sql) = common::seven_dataset_cases()[0];
    let solver = Ggr::default();

    let eng_a = engine();
    let exec_a = QueryExecutor::new(&eng_a, &OracleLlm, Tokenizer::new());
    let mut runner_a = SqlRunner::new(&exec_a, &solver).with_optimizer(OptimizerConfig::all());
    runner_a.register(name, &ds.table, &ds.fds);
    let baseline = runner_a.run(sql, &skewed_truth).expect("baseline");
    let full = exec_a.checkpoint();

    // Tighten the budget on the warm cache: LRU eviction shrinks it, and
    // the next checkpoint carries exactly what survived.
    exec_a.set_answer_cache_budget(Some(10), None);
    let trimmed = exec_a.checkpoint();
    assert!(trimmed.len() <= 10);
    assert!(trimmed.len() < full.len());
    assert!(exec_a.answer_cache_stats().evictions > 0);

    let eng_b = engine();
    let exec_b = QueryExecutor::new(&eng_b, &OracleLlm, Tokenizer::new());
    exec_b.restore(&trimmed);
    let mut runner_b = SqlRunner::new(&exec_b, &solver).with_optimizer(OptimizerConfig::all());
    runner_b.register(name, &ds.table, &ds.fds);
    let resumed = runner_b.run(sql, &skewed_truth).expect("trimmed resume");
    assert_rows_identical(&baseline, &resumed, "trimmed resume");
    assert!(llm_calls(&resumed) <= llm_calls(&baseline));
}
