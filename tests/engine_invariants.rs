//! Property-based tests over the serving simulator (DESIGN.md §4 invariants
//! 5–6): token conservation, completion, monotonicity, and determinism.

use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine, SimRequest,
};
use proptest::prelude::*;

fn engine(cache: bool) -> SimEngine {
    let config = if cache {
        EngineConfig::default()
    } else {
        EngineConfig::no_cache()
    };
    SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        config,
    )
}

/// Strategy: a batch of requests with a shared instruction prefix and
/// variable unique tails / output lengths.
fn workload_strategy() -> impl Strategy<Value = Vec<SimRequest>> {
    (
        1usize..60,
        16usize..128,
        proptest::collection::vec((0usize..96, 0u32..12), 1..60),
    )
        .prop_map(|(n, shared, tails)| {
            (0..n)
                .map(|i| {
                    let (tail, output) = tails[i % tails.len()];
                    let mut toks: Vec<u32> = (0..shared as u32).collect();
                    toks.extend((0..tail as u32).map(|j| 1_000_000 + i as u32 * 512 + j));
                    SimRequest::from_tokens(i, toks, output)
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_completion(reqs in workload_strategy()) {
        let r = engine(true).run(&reqs).unwrap();
        prop_assert_eq!(r.completed, reqs.len());
        prop_assert_eq!(
            r.cached_prompt_tokens + r.computed_prompt_tokens,
            r.total_prompt_tokens
        );
        let expected_prompt: u64 = reqs.iter().map(|q| q.prompt_len() as u64).sum();
        prop_assert_eq!(r.total_prompt_tokens, expected_prompt);
        let expected_output: u64 = reqs.iter().map(|q| u64::from(q.output_len)).sum();
        prop_assert_eq!(r.total_output_tokens, expected_output);
        prop_assert!(r.prefix_hit_rate() >= 0.0 && r.prefix_hit_rate() <= 1.0);
    }

    #[test]
    fn no_cache_never_caches_and_never_wins(reqs in workload_strategy()) {
        let cached = engine(true).run(&reqs).unwrap();
        let uncached = engine(false).run(&reqs).unwrap();
        prop_assert_eq!(uncached.cached_prompt_tokens, 0);
        prop_assert!(
            uncached.job_completion_time_s >= cached.job_completion_time_s - 1e-9
        );
    }

    #[test]
    fn simulation_is_deterministic(reqs in workload_strategy()) {
        let a = engine(true).run(&reqs).unwrap();
        let b = engine(true).run(&reqs).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dedup_mode_never_hits_less_than_strict(reqs in workload_strategy()) {
        let dedup = engine(true).run(&reqs).unwrap();
        let strict = SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig { in_flight_sharing: false, ..EngineConfig::default() },
        )
        .run(&reqs)
        .unwrap();
        prop_assert!(dedup.cached_prompt_tokens >= strict.cached_prompt_tokens);
    }

    #[test]
    fn block_size_preserves_conservation(bs in prop::sample::select(vec![8usize, 16, 32])) {
        let reqs: Vec<SimRequest> = (0..40)
            .map(|i| {
                let mut t: Vec<u32> = (0..100).collect();
                t.extend((0..30u32).map(|j| 5_000 + i as u32 * 64 + j));
                SimRequest::from_tokens(i, t, 3)
            })
            .collect();
        let e = SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig { block_size: bs, ..EngineConfig::default() },
        );
        let r = e.run(&reqs).unwrap();
        prop_assert_eq!(r.completed, 40);
        prop_assert_eq!(
            r.cached_prompt_tokens + r.computed_prompt_tokens,
            r.total_prompt_tokens
        );
    }
}

#[test]
fn fragment_sharing_equals_flat_prompts() {
    // A prompt supplied as shared fragments must behave exactly like the
    // same tokens supplied flat.
    use std::sync::Arc;
    let shared: Arc<[u32]> = Arc::from((0..64u32).collect::<Vec<_>>().into_boxed_slice());
    let fragmented: Vec<SimRequest> = (0..20)
        .map(|i| SimRequest {
            id: i,
            prompt: vec![
                shared.clone(),
                Arc::from(
                    (0..32u32)
                        .map(|j| 9_000 + i as u32 * 100 + j)
                        .collect::<Vec<_>>()
                        .into_boxed_slice(),
                ),
            ],
            output_len: 2,
        })
        .collect();
    let flat: Vec<SimRequest> = fragmented
        .iter()
        .map(|r| {
            let mut toks = Vec::new();
            for f in &r.prompt {
                toks.extend_from_slice(f);
            }
            SimRequest::from_tokens(r.id, toks, r.output_len)
        })
        .collect();
    let a = engine(true).run(&fragmented).unwrap();
    let b = engine(true).run(&flat).unwrap();
    assert_eq!(a, b);
}

#[test]
fn memory_pressure_reduces_but_never_deadlocks() {
    // Requests whose combined KV footprint far exceeds capacity must still
    // all complete (admission waits for completions).
    let reqs: Vec<SimRequest> = (0..300)
        .map(|i| {
            SimRequest::from_tokens(i, (0..2048u32).map(|j| i as u32 * 4096 + j).collect(), 64)
        })
        .collect();
    let r = engine(false).run(&reqs).unwrap();
    assert_eq!(r.completed, 300);
    assert!(r.peak_running < 300, "memory should throttle concurrency");
}
