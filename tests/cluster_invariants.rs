//! Cluster-layer invariants over the full pipeline (table → GGR schedule →
//! prefix keys → routed sharded serving): exactly-once completion under
//! every policy, prefix-affinity dominance over round-robin on reordered
//! workloads, and bit-identical reports for fixed seeds.

use llmqo::cluster::{
    tag_requests, ArrivalProcess, ClusterConfig, ClusterRequest, ClusterSim, LeastLoaded,
    PrefixAffinity, RoundRobin, Router,
};
use llmqo::core::{FunctionalDeps, Ggr, Reorderer};
use llmqo::relational::{encode_table, plan_requests, LlmQuery, Schema, Table};
use llmqo::serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine};
use llmqo::tokenizer::Tokenizer;

/// A reviews⨝products table with `rows / dup` distinct products, GGR-
/// reordered and tagged with depth-1 prefix keys.
fn ggr_workload(rows: usize, dup: usize) -> Vec<ClusterRequest> {
    let mut table = Table::new(Schema::of_strings(&["review", "product"]));
    for i in 0..rows {
        table
            .push_row(vec![
                format!("review {i}: some unique words about delivery {}", i % 11).into(),
                format!(
                    "Product {} — long shared description with warranty terms, \
                     materials, and compatibility notes for the optimizer",
                    i / dup
                )
                .into(),
            ])
            .unwrap();
    }
    let query = LlmQuery::filter(
        "cluster-invariants",
        "Is the review positive? Answer ONLY 'Yes' or 'No'.",
        vec!["product".into(), "review".into()],
        vec!["Yes".into(), "No".into()],
        "Yes",
        2.0,
    );
    let encoded = encode_table(&Tokenizer::new(), &table, &query).unwrap();
    let solution = Ggr::default()
        .reorder(&encoded.reorder, &FunctionalDeps::empty(2))
        .unwrap();
    let requests = plan_requests(&encoded, &solution.plan, &query);
    let keys = solution.plan.prefix_keys(&encoded.reorder, 1);
    tag_requests(requests, &keys)
}

fn sim(replicas: usize) -> ClusterSim {
    ClusterSim::new(
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        ),
        ClusterConfig {
            replicas,
            queue_cap: 32,
        },
    )
}

#[test]
fn every_admitted_request_completes_exactly_once_under_every_policy() {
    let requests = ggr_workload(300, 5);
    for router in [
        &mut RoundRobin as &mut dyn Router,
        &mut LeastLoaded,
        &mut PrefixAffinity::default(),
        &mut PrefixAffinity::bounded(1.25),
    ] {
        let name = router.name();
        let report = sim(4).run(router, &requests).unwrap();
        assert_eq!(report.completed, 300, "{name} lost requests");
        // Exactly once: the union of per-replica completion ids is a
        // permutation of the original row indices.
        let mut ids: Vec<usize> = report
            .replicas
            .iter()
            .flat_map(|r| r.completions.iter().map(|c| c.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..300).collect::<Vec<_>>(), "{name} duplicated work");
        // Token conservation survives sharding.
        let prompt: u64 = requests.iter().map(|r| r.request.prompt_len() as u64).sum();
        assert_eq!(report.total_prompt_tokens, prompt, "{name}");
        for r in &report.replicas {
            assert_eq!(
                r.engine.cached_prompt_tokens + r.engine.computed_prompt_tokens,
                r.engine.total_prompt_tokens,
                "{name}"
            );
        }
    }
}

#[test]
fn prefix_affinity_dominates_round_robin_on_ggr_schedules() {
    // Many small groups (4 rows each): round-robin across 4 replicas leaves
    // at most one group-mate per replica, so almost no intra-group reuse
    // survives; affinity keeps groups whole.
    let requests = ggr_workload(320, 4);
    for replicas in [4usize, 8] {
        let rr = sim(replicas).run(&mut RoundRobin, &requests).unwrap();
        for affinity in [
            &mut PrefixAffinity::default() as &mut dyn Router,
            &mut PrefixAffinity::bounded(1.25),
        ] {
            let name = affinity.name();
            let pa = sim(replicas).run(affinity, &requests).unwrap();
            assert!(
                pa.prefix_hit_rate() >= rr.prefix_hit_rate(),
                "{name} {} < round-robin {} at {replicas} replicas",
                pa.prefix_hit_rate(),
                rr.prefix_hit_rate()
            );
        }
    }
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed() {
    let mut requests = ggr_workload(240, 6);
    ArrivalProcess::Poisson {
        rate_rps: 800.0,
        seed: 2024,
    }
    .assign(&mut requests);
    let a = sim(4)
        .run(&mut PrefixAffinity::bounded(1.25), &requests)
        .unwrap();
    let b = sim(4)
        .run(&mut PrefixAffinity::bounded(1.25), &requests)
        .unwrap();
    assert_eq!(a, b, "same seed, same report");
    let mut other = ggr_workload(240, 6);
    ArrivalProcess::Poisson {
        rate_rps: 800.0,
        seed: 2025,
    }
    .assign(&mut other);
    let c = sim(4)
        .run(&mut PrefixAffinity::bounded(1.25), &other)
        .unwrap();
    assert_ne!(a, c, "different seed should change queueing history");
}

#[test]
fn sharding_preserves_query_semantics_ids() {
    // The cluster must serve exactly the same request set the single-node
    // executor would: same ids, same per-request prompt/output token counts.
    let requests = ggr_workload(120, 5);
    let report = sim(3)
        .run(&mut PrefixAffinity::bounded(1.5), &requests)
        .unwrap();
    let mut served: Vec<(usize, usize, u32)> = report
        .replicas
        .iter()
        .flat_map(|r| {
            r.completions
                .iter()
                .map(|c| (c.id, c.prompt_tokens, c.output_tokens))
        })
        .collect();
    served.sort_unstable();
    let mut expected: Vec<(usize, usize, u32)> = requests
        .iter()
        .map(|r| (r.request.id, r.request.prompt_len(), r.request.output_len))
        .collect();
    expected.sort_unstable();
    assert_eq!(served, expected);
}
