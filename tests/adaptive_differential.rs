//! Differential contract of the adaptive runtime layer (ISSUE 5): with
//! adaptive re-optimization and the session answer cache on, query results
//! are row-for-row identical to both the static (PR-3) optimizer and the
//! optimizations-off oracle on all seven tier-1 datasets — while the
//! reports show the runtime wins: mid-query re-ranking under skewed
//! selectivities, `ceil(remaining / observed_selectivity)` LIMIT batches,
//! over-90% answer-cache hit rates on repeated queries, and `OptStats`
//! accounting that reconciles with engine request counts.

mod common;

use common::{engine, skewed_truth};
use llmqo::core::FunctionalDeps;
use llmqo::core::Ggr;
use llmqo::costmodel::SelectivityPosterior;
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{
    ExecOptions, OptimizerConfig, QueryExecutor, SelectivityTracker, SqlResult, SqlRunner,
};
use llmqo::relational::{LlmQuery, Schema, Table};
use llmqo::serve::OracleLlm;
use llmqo::tokenizer::Tokenizer;
use proptest::prelude::*;

fn run_sql(ds: &Dataset, sql: &str, opt: OptimizerConfig, table_name: &str) -> SqlResult {
    common::run_sql_with_truth(ds, sql, opt, table_name, &skewed_truth)
}

/// One multi-LLM-filter statement per tier-1 dataset (some with `LIMIT`):
/// adaptive-on must return exactly what adaptive-off (static optimizer) and
/// the optimizations-off oracle return, on every dataset.
#[test]
fn adaptive_is_result_identical_on_all_seven_datasets() {
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);
        let adaptive = run_sql(&ds, sql, OptimizerConfig::all(), name);
        let static_only = run_sql(&ds, sql, OptimizerConfig::static_only(), name);
        let oracle = run_sql(&ds, sql, OptimizerConfig::none(), name);
        assert_eq!(
            adaptive.rows,
            static_only.rows,
            "{}: adaptivity changed results for {sql}",
            id.name()
        );
        assert_eq!(
            adaptive.rows,
            oracle.rows,
            "{}: optimizations changed results for {sql}",
            id.name()
        );
        assert_eq!(adaptive.columns, oracle.columns, "{sql}");
        assert_eq!(adaptive.aggregate, oracle.aggregate, "{sql}");
        // Note: adaptive request counts are *not* asserted ≤ static here —
        // cost/(1−sel) ranking minimizes token spend, and on low-cardinality
        // fields dedup can make a lax filter nearly free in request terms.
        // The dedicated skewed-selectivity test below isolates the
        // reordering win where dedup cannot interfere.
    }
}

/// Mid-query re-ranking: the uniform prior makes the static optimizer run
/// the cheap-but-lax filter first; observations from the pilot batch flip
/// the order to picky-first, which issues far fewer LLM requests. The
/// fields are unique per row, so neither dedup nor the answer cache can
/// mask the reordering win.
#[test]
fn adaptive_rerank_beats_static_order_on_skewed_selectivity() {
    let mut table = Table::new(Schema::of_strings(&["review", "note"]));
    for i in 0..400 {
        table
            .push_row(vec![
                format!("a longer review body with several unique words number {i}").into(),
                format!("note {i}").into(),
            ])
            .unwrap();
    }
    let fds = FunctionalDeps::empty(2);
    let ds_like = (table, fds);
    // Written/cost order: the short `note` filter is cheaper per row, so
    // the static optimizer runs it first — but it passes ~95% of rows,
    // while the expensive `review` filter rejects ~95%.
    let sql = "SELECT note FROM t \
               WHERE LLM('is the note recent?', note) <> 'Yes' \
               AND LLM('is the review glowing?', review) = 'Yes'";
    let run_with = |opt: OptimizerConfig| -> SqlResult {
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
        runner.register("t", &ds_like.0, &ds_like.1);
        runner.run(sql, &skewed_truth).unwrap()
    };
    let adaptive = run_with(OptimizerConfig::all());
    let static_only = run_with(OptimizerConfig::static_only());
    assert_eq!(adaptive.rows, static_only.rows);
    let calls = |r: &SqlResult| -> u64 { r.stages.iter().map(|s| s.report.opt.llm_calls).sum() };
    assert!(
        calls(&adaptive) < calls(&static_only),
        "adaptive {} should beat static {}",
        calls(&adaptive),
        calls(&static_only)
    );
    assert!(
        adaptive
            .notes
            .iter()
            .any(|n| n.contains("adaptive re-rank")),
        "re-rank event missing from notes: {:?}",
        adaptive.notes
    );
    let reranks: u32 = adaptive.stages.iter().map(|s| s.report.opt.reranks).sum();
    assert!(reranks > 0, "re-rank count should be surfaced in OptStats");
    // After re-ranking, the picky `=` filter runs first in the final
    // execution order ("-2": it was written second).
    assert_eq!(adaptive.stages[0].report.query, "sql-where-t-2");
}

/// Adaptive LIMIT sizing aims batches at `remaining / observed_selectivity`
/// instead of doubling blindly: under a picky filter it issues no more
/// requests than blind doubling, and the early-stop savings reconcile:
/// `rows_in + rows_skipped = llm_calls + llm_calls_saved()` covers every
/// candidate, matching engine request counts.
#[test]
fn adaptive_limit_sizing_and_early_stop_accounting_reconcile() {
    let ds = Dataset::generate_with_rows(DatasetId::Products, 500);
    let sql = "SELECT product_title FROM products \
               WHERE LLM('bargain?', text, product_title) = 'Yes' LIMIT 4";
    let adaptive = run_sql(&ds, sql, OptimizerConfig::all(), "products");
    let static_only = run_sql(&ds, sql, OptimizerConfig::static_only(), "products");
    let oracle = run_sql(&ds, sql, OptimizerConfig::none(), "products");
    assert_eq!(adaptive.rows, oracle.rows);
    assert_eq!(adaptive.rows.len(), 4);
    for res in [&adaptive, &static_only] {
        let opt = res.stages[0].report.opt;
        assert_eq!(
            opt.rows_in + opt.rows_skipped,
            opt.llm_calls + opt.llm_calls_saved(),
            "OptStats must reconcile with engine request counts"
        );
        assert_eq!(
            opt.rows_in + opt.rows_skipped,
            ds.table.nrows() as u64,
            "every candidate is either offered or skipped"
        );
        assert_eq!(opt.llm_calls, res.stages[0].report.engine.completed as u64);
        assert!(opt.rows_skipped > 0, "LIMIT 4 must stop the scan early");
    }
    let calls = |r: &SqlResult| r.stages[0].report.opt.llm_calls;
    assert!(calls(&adaptive) <= calls(&static_only));
    assert!(calls(&adaptive) < oracle.stages[0].report.opt.llm_calls);
}

/// Acceptance: running the same statement twice on one executor answers
/// over 90% of second-run rows from the session cache, with zero new
/// engine requests, and identical results.
#[test]
fn repeated_query_hits_answer_cache_above_90_percent() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 200);
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver);
    runner.register("movies", &ds.table, &ds.fds);
    let sql = "SELECT movietitle FROM movies \
               WHERE LLM('kids?', movieinfo, reviewcontent) = 'Yes'";
    let first = runner.run(sql, &skewed_truth).unwrap();
    let second = runner.run(sql, &skewed_truth).unwrap();
    assert_eq!(first.rows, second.rows);
    let opt = second.stages[0].report.opt;
    assert_eq!(opt.llm_calls, 0, "repeat run must not touch the engine");
    let hit_rate = opt.cache_hits as f64 / opt.rows_in as f64;
    assert!(hit_rate > 0.9, "hit rate {hit_rate}");
    assert!(opt.cache_tokens_saved > 0);
    assert!(executor.answer_cache_stats().hit_rate() > 0.4);
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// Deterministic Bernoulli stream for the convergence property.
fn lcg_pass(seed: u64, i: u64, p: f64) -> bool {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 31;
    ((z >> 11) as f64 / (1u64 << 53) as f64) < p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SelectivityTracker` estimates converge to the true pass rate of a
    /// synthetic Bernoulli stream, for any prior and batching pattern.
    /// (The vendored proptest shim has integer strategies only; percentages
    /// map into `[0, 1]` rates.)
    #[test]
    fn tracker_converges_to_true_pass_rate(
        true_pct in 2u64..98,
        prior_pct in 5u64..95,
        strength_raw in 1u64..32,
        batch in 1usize..64,
        seed in 0u64..1_000_000_000,
    ) {
        let true_rate = true_pct as f64 / 100.0;
        let prior = prior_pct as f64 / 100.0;
        let strength = strength_raw as f64;
        let mut tracker = SelectivityTracker::new(strength);
        tracker.register(0, prior);
        prop_assert!((tracker.selectivity(0).unwrap() - prior).abs() < 1e-9);
        let total = 4000u64;
        let mut passed_all = 0u64;
        let mut offered = 0u64;
        while offered < total {
            let n = (batch as u64).min(total - offered);
            let passed = (0..n).filter(|i| lcg_pass(seed, offered + i, true_rate)).count() as u64;
            tracker.observe(0, passed, n);
            passed_all += passed;
            offered += n;
        }
        let empirical = passed_all as f64 / total as f64;
        let estimate = tracker.selectivity(0).unwrap();
        // The posterior mean must sit within the prior's vanishing weight
        // of the empirical rate: |estimate − empirical| ≤ strength / total.
        prop_assert!(
            (estimate - empirical).abs() <= strength / total as f64 + 1e-9,
            "estimate {estimate} vs empirical {empirical}"
        );
        // And therefore near the true rate (Bernoulli noise at n = 4000).
        prop_assert!((estimate - true_rate).abs() < 0.05,
            "estimate {estimate} vs true {true_rate}");
    }

    /// Beta smoothing interpolates: with few observations the estimate
    /// stays between the prior and the empirical rate.
    #[test]
    fn posterior_mean_is_between_prior_and_empirical(
        prior_pct in 10u64..90,
        strength_raw in 1u64..16,
        passed in 0u64..10,
        extra in 0u64..20,
    ) {
        let prior = prior_pct as f64 / 100.0;
        let strength = strength_raw as f64;
        let total = passed + extra;
        let mut p = SelectivityPosterior::new(prior, strength);
        p.observe(passed, total);
        let mean = p.mean();
        if total > 0 {
            let empirical = passed as f64 / total as f64;
            let (lo, hi) = if empirical < prior { (empirical, prior) } else { (prior, empirical) };
            prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12,
                "mean {mean} outside [{lo}, {hi}]");
        } else {
            prop_assert!((mean - prior).abs() < 1e-12);
        }
    }

    /// Answer-cache hits never change result rows: executing a random
    /// duplicate-heavy table with the cache on (twice, so the second pass
    /// is nearly all hits) returns exactly the cache-off outputs.
    #[test]
    fn answer_cache_never_changes_results(
        rows in proptest::collection::vec((0u8..6, 0u8..4), 1..40),
        yes_mod in 1usize..5,
    ) {
        let mut table = Table::new(Schema::of_strings(&["a", "b"]));
        for &(a, b) in &rows {
            table
                .push_row(vec![format!("alpha value {a}").into(), format!("beta {b}").into()])
                .unwrap();
        }
        let fds = FunctionalDeps::empty(2);
        let query = LlmQuery::filter(
            "prop-cache",
            "Keep? Answer Yes or No.",
            vec!["a".into(), "b".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        );
        let truth = move |row: usize| {
            if row.is_multiple_of(yes_mod) {
                "Yes".to_string()
            } else {
                "No".to_string()
            }
        };
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let off = executor
            .execute(&table, &query, &solver, &fds, &truth)
            .unwrap();
        let on1 = executor
            .execute_with(&table, &query, &solver, &fds, &truth, ExecOptions::optimized())
            .unwrap();
        let on2 = executor
            .execute_with(&table, &query, &solver, &fds, &truth, ExecOptions::optimized())
            .unwrap();
        prop_assert_eq!(&off.outputs, &on1.outputs);
        prop_assert_eq!(&off.selected_rows, &on1.selected_rows);
        prop_assert_eq!(&off.outputs, &on2.outputs);
        prop_assert_eq!(&off.selected_rows, &on2.selected_rows);
        // Second pass: every row served from the cache, no engine work.
        prop_assert_eq!(on2.report.opt.llm_calls, 0);
        prop_assert_eq!(on2.report.opt.cache_hits, rows.len() as u64);
    }
}
