//! Differential contract of the observability layer (`llmqo-obs`): the
//! instrumentation threaded through the engine, cluster, and relational
//! layers must be **observationally invisible** — runs with sinks disabled
//! (the default) and with everything enabled produce identical reports,
//! completions, and SQL results on all seven tier-1 datasets — and the
//! sinks themselves must be trustworthy: histogram quantiles track the
//! exact [`percentile`](llmqo::serve::percentile) within the log-bucket
//! resolution, and the sim-time trace exporter is byte-deterministic.
//!
//! Tests that flip the global `llmqo_obs` enabled flag or touch the global
//! registry/tracer serialize on one mutex — `cargo test` runs test
//! functions of one binary concurrently, and the sinks are process-global.

mod common;

use common::{assert_sql_identical, engine, skewed_truth};
use llmqo::cluster::{ClusterReport, PrefixAffinity, RoundRobin, Router};
use llmqo::datasets::Dataset;
use llmqo::relational::{OptimizerConfig, SqlResult};
use llmqo::serve::percentile;
use proptest::prelude::*;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_session() -> (Vec<llmqo::serve::Completion>, llmqo::serve::SessionReport) {
    let eng = engine();
    let mut session = eng.session().expect("session");
    // 12 groups of 6 requests sharing a 48-token prefix: exercises
    // admission, caching, eviction, and decode.
    let requests = common::grouped_requests(12, 6);
    let completions = session.run_batch(&requests).expect("run").to_vec();
    (completions, session.finish())
}

fn run_cluster(router: &mut dyn Router) -> ClusterReport {
    common::cluster_sim(3, 16)
        .run(router, &common::grouped_workload(12, 6))
        .expect("cluster run")
}

fn run_sql(ds: &Dataset, table_name: &str, sql: &str) -> SqlResult {
    common::run_sql_with_truth(ds, sql, OptimizerConfig::all(), table_name, &skewed_truth)
}

/// Instrumented-but-disabled engine runs are identical to enabled runs:
/// the sinks never influence scheduling, clocks, or cache decisions.
#[test]
fn session_outcome_is_invisible_to_observability() {
    let _g = lock();
    llmqo_obs::set_enabled(false);
    let disabled = run_session();
    llmqo_obs::set_enabled(true);
    llmqo_obs::registry().reset();
    llmqo_obs::tracer().clear();
    let enabled = run_session();
    llmqo_obs::set_enabled(false);
    assert_eq!(disabled, enabled);
    // The enabled run really did record: lifecycle spans + counters exist.
    assert!(!llmqo_obs::tracer().is_empty(), "no trace events recorded");
    assert_eq!(llmqo_obs::registry().counter("serve.completions").get(), 72);
}

/// The same invisibility contract at the cluster layer, for a prefix-blind
/// and a prefix-affine router.
#[test]
fn cluster_reports_are_invisible_to_observability() {
    let _g = lock();
    for router in [
        &mut RoundRobin as &mut dyn Router,
        &mut PrefixAffinity::default(),
    ] {
        llmqo_obs::set_enabled(false);
        let disabled = run_cluster(router);
        llmqo_obs::set_enabled(true);
        llmqo_obs::registry().reset();
        llmqo_obs::tracer().clear();
        let enabled = run_cluster(router);
        llmqo_obs::set_enabled(false);
        assert_eq!(disabled, enabled, "router {}", disabled.policy);
        // Occupancy sampling is always on (pure reads shared by both
        // modes), so the report itself carries the satellite gauges.
        assert!(disabled.replicas.iter().any(|r| r.occupancy.samples > 0));
    }
}

/// SQL execution — the whole optimizer + adaptive runtime + engine stack —
/// is unchanged by enabling observability, on all seven tier-1 datasets.
#[test]
fn sql_results_are_invisible_to_observability_on_all_seven_datasets() {
    let _g = lock();
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);
        llmqo_obs::set_enabled(false);
        let disabled = run_sql(&ds, name, sql);
        llmqo_obs::set_enabled(true);
        llmqo_obs::registry().reset();
        llmqo_obs::tracer().clear();
        let enabled = run_sql(&ds, name, sql);
        llmqo_obs::set_enabled(false);
        assert_sql_identical(&disabled, &enabled, id.name());
    }
}

/// Two identical enabled runs export byte-identical Chrome trace JSON:
/// timestamps come from the deterministic sim clock, never wall time.
#[test]
fn trace_export_is_byte_deterministic() {
    let _g = lock();
    let mut exports = Vec::new();
    for _ in 0..2 {
        llmqo_obs::set_enabled(true);
        llmqo_obs::registry().reset();
        llmqo_obs::tracer().clear();
        run_session();
        let _ = run_cluster(&mut PrefixAffinity::default());
        llmqo_obs::set_enabled(false);
        exports.push(llmqo_obs::tracer().export_chrome_json());
    }
    assert!(!exports[0].is_empty());
    assert_eq!(exports[0], exports[1], "trace export is nondeterministic");
    llmqo_obs::validate_json(&exports[0]).expect("trace JSON well-formed");
}

/// The text expositions round-trip: Prometheus text parses back into the
/// samples that produced it, and the JSON snapshot is well-formed.
#[test]
fn metric_expositions_round_trip() {
    let _g = lock();
    llmqo_obs::set_enabled(true);
    llmqo_obs::registry().reset();
    llmqo_obs::tracer().clear();
    run_session();
    llmqo_obs::set_enabled(false);
    let prom = llmqo_obs::registry().prometheus_text();
    let samples = llmqo_obs::parse_prometheus(&prom).expect("prometheus text parses");
    assert!(!samples.is_empty());
    assert!(samples
        .iter()
        .any(|s| s.name.starts_with("serve_requests_enqueued")));
    let json = llmqo_obs::registry().json_snapshot();
    llmqo_obs::validate_json(&json).expect("metrics JSON well-formed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles vs the exact nearest-rank percentile the serving
    /// layer computes: log-bucketing with 8 sub-buckets per octave bounds
    /// the representative error at ~4.4%, so 10% relative tolerance holds
    /// for any sample set and any probe point.
    #[test]
    fn histogram_quantiles_track_exact_percentile(
        raw in proptest::collection::vec(1u64..1_000_000_000_000_000u64, 1..300),
        p_mil in 0u64..=1000,
    ) {
        // The vendored proptest shim has no f64 range strategies; span
        // 1e-6..1e9 seconds by scaling integer draws.
        let samples: Vec<f64> = raw.iter().map(|&x| x as f64 * 1e-6).collect();
        let p = p_mil as f64 / 1000.0;
        let registry = llmqo_obs::Registry::new();
        let hist = registry.histogram("q");
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let exact = percentile(&sorted, p);
        let approx = hist.quantile(p);
        prop_assert!(
            (approx - exact).abs() <= 0.10 * exact.abs(),
            "quantile({p}) = {approx}, exact = {exact}"
        );
    }
}
