//! Differential contract of the fault-injection subsystem: the chaos
//! dispatcher ([`ClusterSim::run_with_faults`]) with an empty [`FaultPlan`]
//! and a disabled [`RetryPolicy`] is **byte-identical** to the fault-free
//! seed path ([`ClusterSim::run`]); any chaotic configuration reproduces
//! byte for byte from `(plan, policy, workload)` alone; and the
//! zero-request-loss invariant `succeeded + failed == offered` holds under
//! crashes, drains, stragglers, and transient errors. The same empty-plan
//! identity holds one layer up: SQL statements under an inert
//! [`StatementFaults`] match fault-free execution on all seven tier-1
//! datasets, and degraded statements fail *gracefully* — partial results
//! with per-row annotations, or a clean typed error. Never a panic, never a
//! lost request.
//!
//! Also here: proptests pinning the retry-insensitive router contract (all
//! four built-in routers are pure functions of their snapshots — see the
//! `Router` trait docs), the bounded-queue backpressure behaviour under
//! full saturation, and `std::error::Error` conformance of the public
//! error enums.

mod common;

use common::{
    assert_sql_identical, cluster_sim as sim, engine, grouped_workload as workload, routers,
    skewed_truth,
};
use llmqo::cluster::{
    ArrivalProcess, ClusterReport, FaultPlan, LeastLoaded, PrefixAffinity, ReplicaSnapshot,
    RetryPolicy, RoundRobin, Router,
};
use llmqo::core::Ggr;
use llmqo::datasets::Dataset;
use llmqo::relational::{
    ExecError, OptimizerConfig, QueryExecutor, SqlError, SqlResult, SqlRunner, StatementFaults,
};
use llmqo::serve::OracleLlm;
use llmqo::tokenizer::Tokenizer;
use proptest::prelude::*;

/// The differential spine: with an inert plan and policy, the chaos
/// dispatcher must take the exact legacy code path — same placements, same
/// clocks, same queue waits, same report bytes — for every built-in router,
/// batch and Poisson arrivals, roomy and saturated queues.
#[test]
fn empty_plan_chaos_is_byte_identical_to_seed_run() {
    let inert_plan = FaultPlan::default();
    let inert_retry = RetryPolicy::disabled();
    for (replicas, queue_cap) in [(3usize, 16usize), (3, 1), (8, 4)] {
        for arrivals in [
            ArrivalProcess::Batch,
            ArrivalProcess::Poisson {
                rate_rps: 40.0,
                seed: 11,
            },
        ] {
            let mut requests = workload(12, 6);
            arrivals.assign(&mut requests);
            let sim = sim(replicas, queue_cap);
            for mut router in routers() {
                let seed_report = sim.run(router.as_mut(), &requests).expect("seed run");
                let chaos_report = sim
                    .run_with_faults(router.as_mut(), &requests, &inert_plan, &inert_retry)
                    .expect("chaos run");
                assert_eq!(
                    seed_report, chaos_report,
                    "router {} diverged ({replicas} replicas, cap {queue_cap}, {arrivals:?})",
                    seed_report.policy
                );
                assert!(
                    !chaos_report.faults.engaged(),
                    "inert plan+policy must not engage the failure machinery"
                );
            }
        }
    }
}

fn chaotic_plan() -> FaultPlan {
    FaultPlan::seeded(42)
        .crash_restart(0, 0.08, 0.3)
        .slowdown(1, 0.05, 0.4, 3.0)
        .drain(2, 0.15, 0.5)
        .transient_errors_ppm(60_000)
}

fn chaotic_policy() -> RetryPolicy {
    RetryPolicy::retries(4)
        .with_hedging(0.5)
        .with_deadline(60.0)
}

/// Chaos is reproducible: the same `(plan, policy, workload, router)`
/// quadruple yields byte-identical reports on every invocation.
#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let mut requests = workload(12, 6);
    ArrivalProcess::Poisson {
        rate_rps: 50.0,
        seed: 3,
    }
    .assign(&mut requests);
    let sim = sim(4, 8);
    let plan = chaotic_plan();
    let policy = chaotic_policy();
    let runs: Vec<ClusterReport> = (0..2)
        .map(|_| {
            sim.run_with_faults(&mut PrefixAffinity::default(), &requests, &plan, &policy)
                .expect("chaos run")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "chaos run is nondeterministic");
    let fs = &runs[0].faults;
    assert!(fs.engaged());
    assert_eq!(fs.succeeded + fs.failed, fs.offered, "requests lost");
    assert_eq!(fs.crashes, 1);
    assert_eq!(fs.drains, 1);
    assert_eq!(fs.restarts, 2, "crash restart + drain rejoin");
    assert!(fs.transient_errors > 0, "transient errors never rolled");
    assert!(fs.retries > 0, "no retries scheduled");
    assert_eq!(fs.unavailability_windows, 2);
    assert!(fs.unavailable_s > 0.0);
}

/// The macro-stepped chaos dispatcher and the single-stepped oracle agree
/// byte for byte — faults, slowdown windows, retries and hedges land on the
/// same step boundaries in both modes.
#[test]
fn macro_and_single_stepped_chaos_agree() {
    let mut requests = workload(10, 6);
    ArrivalProcess::Poisson {
        rate_rps: 60.0,
        seed: 9,
    }
    .assign(&mut requests);
    let sim = sim(3, 8);
    // Scheduled faults, slowdown windows, and hedge timers all bound the
    // macro window in advance, so this plan exercises genuine macro
    // stepping. Transient errors are the one source of mid-window retry
    // feedback; with them the dispatcher falls back to fine-grained
    // stepping on its own (second plan below), which must also agree.
    let plans = [
        FaultPlan::seeded(5)
            .crash_restart(0, 0.1, 0.25)
            .slowdown(2, 0.0, 0.3, 2.5)
            .drain(1, 0.2, 0.45),
        FaultPlan::seeded(5)
            .crash_restart(0, 0.1, 0.25)
            .slowdown(2, 0.0, 0.3, 2.5)
            .transient_errors_ppm(40_000),
    ];
    let policy = RetryPolicy::retries(3).with_hedging(0.4);
    for plan in &plans {
        for mut router in routers() {
            let macro_run = sim
                .run_with_faults(router.as_mut(), &requests, plan, &policy)
                .expect("macro run");
            let single = sim
                .run_with_faults_single_stepped(router.as_mut(), &requests, plan, &policy)
                .expect("single-stepped run");
            assert_eq!(
                macro_run, single,
                "stepping modes diverged for router {}",
                macro_run.policy
            );
        }
    }
}

/// The chaos dispatcher macro-steps through backpressured phases for
/// retry-insensitive routers (the PR-8 contract extended to the fault
/// path): a saturated batch against depth-1 queues with a crash and a
/// slowdown window on top must take genuine backpressured macro steps and
/// still agree byte for byte with the single-stepped oracle.
#[test]
fn chaos_macro_stepping_survives_backpressure() {
    let requests = workload(12, 6); // batch: everything queues at t=0
    let sim = sim(3, 1);
    let plan = FaultPlan::seeded(5)
        .crash_restart(0, 0.1, 0.3)
        .slowdown(1, 0.05, 0.4, 2.0);
    let policy = RetryPolicy::retries(3);
    for mut router in routers() {
        let coarse = sim
            .run_with_faults(router.as_mut(), &requests, &plan, &policy)
            .expect("macro run");
        let fine = sim
            .run_with_faults_single_stepped(router.as_mut(), &requests, &plan, &policy)
            .expect("single-stepped run");
        assert_eq!(
            coarse, fine,
            "backpressured stepping modes diverged for router {}",
            coarse.policy
        );
        assert!(
            coarse.backpressure_macro_steps > 0,
            "router {} took no backpressured macro steps under full saturation",
            coarse.policy
        );
        assert_eq!(fine.backpressure_macro_steps, 0);
    }
}

/// A crash with warm restart plus a retry budget loses **zero** requests:
/// every crash-killed attempt re-enters through the retry machinery and
/// eventually completes, and the ledger reconciles exactly with the
/// offered load.
#[test]
fn crash_with_retry_loses_zero_requests() {
    let requests = workload(8, 6);
    let sim = sim(2, 16);
    let plan = FaultPlan::seeded(7).crash_restart(0, 0.05, 0.2);
    let report = sim
        .run_with_faults(
            &mut PrefixAffinity::default(),
            &requests,
            &plan,
            &RetryPolicy::retries(4),
        )
        .expect("chaos run");
    let fs = &report.faults;
    assert_eq!(fs.offered, requests.len());
    assert_eq!(fs.succeeded + fs.failed, fs.offered);
    assert_eq!(fs.failed, 0, "a crash with restart+retry must lose nothing");
    assert_eq!(fs.succeeded, requests.len());
    assert_eq!(fs.crashes, 1);
    assert_eq!(fs.restarts, 1);
    assert!(fs.crash_failures > 0, "the crash killed no attempts");
    assert!(fs.retries >= fs.crash_failures);
    // No hedging and no transient errors: every engine completion is a
    // logical success, so the replica-level completion records reconcile
    // with the request ledger too.
    assert_eq!(report.completed, fs.succeeded);
    assert_eq!(fs.unavailability_windows, 1);
    assert!(fs.unavailable_s > 0.0);
}

/// Transient errors consume engine work without producing successes:
/// every errored attempt completes at the engine layer but re-enters the
/// retry machinery, so `completed == succeeded + transient_errors` (no
/// crashes, no hedges), and retries push the success count back up.
#[test]
fn transient_errors_reconcile_with_engine_completions() {
    let requests = workload(10, 6);
    let sim = sim(3, 16);
    let plan = FaultPlan::seeded(13).transient_errors_ppm(100_000);
    let with_retry = sim
        .run_with_faults(&mut LeastLoaded, &requests, &plan, &RetryPolicy::retries(4))
        .expect("retry run");
    let fs = &with_retry.faults;
    assert_eq!(fs.succeeded + fs.failed, fs.offered);
    assert!(fs.transient_errors > 0);
    assert_eq!(
        with_retry.completed,
        fs.succeeded + fs.transient_errors as usize
    );
    assert!(fs.retries > 0);

    // Same plan with retries off: first-attempt transient errors become
    // permanent failures, one per errored attempt.
    let no_retry = sim
        .run_with_faults(&mut LeastLoaded, &requests, &plan, &RetryPolicy::disabled())
        .expect("no-retry run");
    let nf = &no_retry.faults;
    assert_eq!(nf.succeeded + nf.failed, nf.offered);
    assert_eq!(nf.failed as u64, nf.transient_errors);
    assert!(nf.failed > 0, "10% over 60 attempts should fail some");
    assert!(
        with_retry.faults.failed < nf.failed,
        "retries must strictly improve on no retries here"
    );
}

/// Losing the whole fleet permanently still terminates cleanly: every
/// request is accounted as failed, nothing panics, nothing hangs.
#[test]
fn losing_every_replica_fails_all_requests_cleanly() {
    let requests = workload(6, 6);
    let sim = sim(2, 16);
    let plan = FaultPlan::seeded(1).crash(0, 0.0).crash(1, 0.0);
    let report = sim
        .run_with_faults(&mut RoundRobin, &requests, &plan, &RetryPolicy::retries(3))
        .expect("run must terminate");
    let fs = &report.faults;
    assert_eq!(fs.succeeded, 0);
    assert_eq!(fs.failed, fs.offered);
    assert_eq!(fs.crashes, 2);
    assert_eq!(fs.restarts, 0);
}

/// A router that counts consultations — the documented "stateful router"
/// case: the dispatcher may re-ask after every simulation event while a
/// chosen replica's queue is full, so a stateful policy observes extra
/// calls under backpressure but the simulation stays correct.
struct Counting {
    inner: LeastLoaded,
    calls: usize,
}

impl Router for Counting {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn route(&mut self, prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        self.calls += 1;
        self.inner.route(prefix_key, replicas)
    }
}

/// Full saturation of the bounded replica queues: a batch far larger than
/// `replicas × queue_cap` arrives at time zero. The dispatcher must apply
/// backpressure (requests wait in admission), complete everything, and a
/// stateful router must observe at least one consultation per placement —
/// typically many more, one per backpressure retry.
#[test]
fn bounded_queues_backpressure_under_full_saturation() {
    let requests = workload(12, 6);
    let sim = sim(3, 1);
    let mut counting = Counting {
        inner: LeastLoaded,
        calls: 0,
    };
    let report = sim.run(&mut counting, &requests).expect("saturated run");
    assert_eq!(report.completed, requests.len());
    assert!(
        counting.calls > requests.len(),
        "full saturation must re-consult the router on backpressure \
         ({} calls for {} placements)",
        counting.calls,
        requests.len()
    );
    // The same stateful router through the chaos path, with a crash on
    // top: retries re-enter the admission queue and re-consult the router,
    // and the ledger still reconciles.
    let mut chaos_counting = Counting {
        inner: LeastLoaded,
        calls: 0,
    };
    let chaos = sim
        .run_with_faults(
            &mut chaos_counting,
            &requests,
            &FaultPlan::seeded(2).crash_restart(1, 0.05, 0.2),
            &RetryPolicy::retries(3),
        )
        .expect("saturated chaos run");
    let fs = &chaos.faults;
    assert_eq!(fs.succeeded + fs.failed, fs.offered);
    assert!(
        chaos_counting.calls > fs.offered + fs.retries as usize,
        "retried placements must re-consult the router"
    );
}

/// Duplicate engine ids are rejected up front — completions could not be
/// attributed back to logical requests otherwise.
#[test]
fn chaos_run_rejects_duplicate_request_ids() {
    let mut requests = workload(2, 2);
    requests[3].request.id = requests[0].request.id;
    let err = sim(2, 4)
        .run_with_faults(
            &mut RoundRobin,
            &requests,
            &FaultPlan::default(),
            &RetryPolicy::retries(2),
        )
        .expect_err("duplicate ids must be rejected");
    assert!(err.to_string().contains("duplicate request id"));
}

// ---------------------------------------------------------------------------
// SQL-layer graceful degradation
// ---------------------------------------------------------------------------

fn run_sql(
    ds: &Dataset,
    table_name: &str,
    sql: &str,
    opt: OptimizerConfig,
) -> Result<SqlResult, SqlError> {
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
    runner.register(table_name, &ds.table, &ds.fds);
    runner.run(sql, &skewed_truth)
}

/// The empty-plan identity one layer up: a configured-but-inert
/// `StatementFaults` (zero error rate) executes the exact fault-free code
/// path on all seven tier-1 datasets.
#[test]
fn inert_statement_faults_match_fault_free_sql_on_all_seven_datasets() {
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);
        let baseline = run_sql(&ds, name, sql, OptimizerConfig::all())
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let inert = OptimizerConfig {
            faults: Some(StatementFaults::new(0, 99)),
            ..OptimizerConfig::all()
        };
        let with_inert = run_sql(&ds, name, sql, inert).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_sql_identical(&baseline, &with_inert, id.name());
        assert!(baseline.stages.iter().all(|s| s.failed_rows.is_empty()));
    }
}

/// Partial-result degradation: with a heavy error rate and a small retry
/// budget, the statement still succeeds — dropped rows are listed in
/// `failed_rows`, annotated in `notes`, and the whole degraded execution
/// is deterministic in the fault seed.
#[test]
fn exhausted_retry_budget_degrades_to_annotated_partial_results() {
    let ds = Dataset::generate_with_rows(llmqo::datasets::DatasetId::Movies, 120);
    let (_, name, sql) = common::seven_dataset_cases()[0];
    let faulty = OptimizerConfig {
        faults: Some(StatementFaults::new(400_000, 9).with_attempts(2)),
        ..OptimizerConfig::all()
    };
    let degraded = run_sql(&ds, name, sql, faulty).expect("partial mode must not error");
    let failed: usize = degraded.stages.iter().map(|s| s.failed_rows.len()).sum();
    assert!(
        failed > 0,
        "40%² per-row failure over 120 rows must drop some"
    );
    assert!(
        degraded.notes.iter().any(|n| n.contains("degraded")),
        "degradation must be announced in the notes: {:?}",
        degraded.notes
    );
    let retries: u64 = degraded
        .stages
        .iter()
        .map(|s| s.report.opt.llm_retries)
        .sum();
    assert!(retries > 0, "budget 2 must have retried some rows");
    for s in &degraded.stages {
        assert!(
            s.failed_rows.windows(2).all(|w| w[0] < w[1]),
            "failed rows must be ascending and unique"
        );
    }
    // Deterministic: same seed, same degradation.
    let again = run_sql(&ds, name, sql, faulty).expect("rerun");
    assert_sql_identical(&degraded, &again, "degraded rerun");

    // EXPLAIN ANALYZE documents the fault configuration and the damage.
    let analyzed = run_sql(
        &ds,
        name,
        &format!("EXPLAIN ANALYZE {sql}"),
        OptimizerConfig {
            faults: Some(StatementFaults::new(400_000, 9).with_attempts(2)),
            ..OptimizerConfig::all()
        },
    )
    .expect("explain analyze");
    let rendering: String = analyzed
        .rows
        .iter()
        .map(|r| r.join(""))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        rendering.contains("-- faults:"),
        "EXPLAIN ANALYZE must carry the faults footer:\n{rendering}"
    );
    assert!(
        rendering.contains("rows failed"),
        "EXPLAIN ANALYZE must show per-node damage:\n{rendering}"
    );
}

/// Strict mode: the same outage with partial results disabled fails the
/// statement with a clean typed error, not a panic.
#[test]
fn strict_mode_surfaces_llm_unavailable() {
    let ds = Dataset::generate_with_rows(llmqo::datasets::DatasetId::Movies, 120);
    let (_, name, sql) = common::seven_dataset_cases()[0];
    let strict = OptimizerConfig {
        faults: Some(StatementFaults::new(400_000, 9).with_attempts(2).strict()),
        ..OptimizerConfig::all()
    };
    let err = run_sql(&ds, name, sql, strict).expect_err("strict mode must error");
    match err {
        SqlError::Exec(ExecError::LlmUnavailable { attempts, .. }) => {
            assert_eq!(attempts, 2);
        }
        other => panic!("expected LlmUnavailable, got: {other}"),
    }
}

// ---------------------------------------------------------------------------
// Error-trait conformance
// ---------------------------------------------------------------------------

/// Every public error enum boxes into `dyn std::error::Error` and renders
/// a non-empty `Display` — the satellite contract that lets callers thread
/// any layer's failure through `?` into `Box<dyn Error>`.
#[test]
fn public_errors_box_and_display() {
    fn boxed(e: impl std::error::Error + 'static) -> Box<dyn std::error::Error> {
        Box::new(e)
    }
    let requests = workload(2, 2);
    // InvalidFaultPlan via a malformed plan.
    let bad_plan = sim(2, 4)
        .run_with_faults(
            &mut RoundRobin,
            &requests,
            &FaultPlan::seeded(0).crash(9, 0.0),
            &RetryPolicy::disabled(),
        )
        .expect_err("out-of-fleet crash must be rejected");
    // DuplicateRequestId.
    let mut dup = workload(2, 2);
    dup[1].request.id = dup[0].request.id;
    let dup_err = sim(2, 4)
        .run_with_faults(
            &mut RoundRobin,
            &dup,
            &FaultPlan::default(),
            &RetryPolicy::retries(2),
        )
        .expect_err("duplicates must be rejected");
    let errors: Vec<Box<dyn std::error::Error>> = vec![
        boxed(bad_plan),
        boxed(dup_err),
        boxed(ExecError::LlmUnavailable {
            row: 7,
            attempts: 3,
        }),
        boxed(SqlError::Exec(ExecError::LlmUnavailable {
            row: 7,
            attempts: 3,
        })),
        boxed(SqlError::UnknownTable {
            name: "nope".into(),
        }),
    ];
    for e in &errors {
        assert!(!e.to_string().is_empty(), "empty Display for {e:?}");
    }
}

// ---------------------------------------------------------------------------
// The retry-insensitive router contract
// ---------------------------------------------------------------------------

fn arb_snapshots() -> impl Strategy<Value = Vec<ReplicaSnapshot>> {
    proptest::collection::vec(
        (
            0usize..20,
            0usize..8,
            0usize..1000,
            0usize..60,
            prop::bool::ANY,
        ),
        1..10,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(
                |(index, (queued, running, kv_blocks_in_use, assigned, alive))| ReplicaSnapshot {
                    index,
                    queued,
                    running,
                    kv_blocks_in_use,
                    capacity_blocks: 1000,
                    clock_s: 0.0,
                    assigned,
                    alive,
                },
            )
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All four built-in routers are pure functions of `(prefix_key,
    /// replicas)`: re-consulting (as the dispatcher does on every
    /// backpressure retry, failover, and hedge) never changes the answer,
    /// a fresh instance answers exactly like a used one, the choice is
    /// always in range, and an alive replica is preferred whenever one
    /// exists.
    #[test]
    fn builtin_routers_are_pure_in_range_and_prefer_alive(
        snaps in arb_snapshots(),
        key in 0u64..u64::MAX,
        noise_key in 0u64..u64::MAX,
    ) {
        let any_alive = snaps.iter().any(|r| r.alive);
        for mut router in routers() {
            let first = router.route(key, &snaps);
            prop_assert!(first < snaps.len(), "{} out of range", router.name());
            if any_alive {
                prop_assert!(
                    snaps[first].alive,
                    "{} chose a dead replica with alive ones present",
                    router.name()
                );
            }
            // Re-consultation (retry-insensitivity), even after the router
            // has been exercised with unrelated traffic.
            let _ = router.route(noise_key, &snaps);
            prop_assert!(
                router.route(key, &snaps) == first,
                "{} is consultation-sensitive",
                router.name()
            );
        }
        // Fresh instances agree with used ones: no hidden state.
        let fresh: Vec<usize> = routers()
            .iter_mut()
            .map(|r| r.route(key, &snaps))
            .collect();
        let used: Vec<usize> = routers()
            .iter_mut()
            .map(|r| {
                for k in 0..5u64 {
                    let _ = r.route(k.wrapping_mul(0x9e37), &snaps);
                }
                r.route(key, &snaps)
            })
            .collect();
        prop_assert!(fresh == used, "history changed a routing decision");
    }
}
