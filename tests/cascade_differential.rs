//! Differential contract of model-tier cascades (ISSUE 10): routing rows
//! through a cheap tier and escalating low-confidence ones to an expensive
//! tier is an *accuracy-for-dollars* trade, so its endpoints must be exact —
//! escalate-everything is byte-identical to the single-expensive-tier
//! oracle, and a never-escalating cascade whose cheap tier is always right
//! is byte-identical too — on all seven tier-1 datasets. In between, the
//! cascade must be deterministic in its seed, reconcile its tier ledger
//! exactly (`rows_in = rows_cheap + rows_escalated + rows_failed`), share
//! one confidence stream with the serving layer, escalate monotonically in
//! the threshold, and render its EXPLAIN annotations *only* when a cascade
//! is configured — single-tier plans keep their pre-cascade golden output.

mod common;

use common::{assert_same_results, assert_sql_identical, run_sql};
use llmqo::costmodel::{CascadePlan, TierPosterior};
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{CascadeConfig, OptimizerConfig, SqlResult};
use llmqo::serve::confidence_unit;
use proptest::prelude::*;

const SEED: u64 = 0xD1FF;

fn rendering(r: &SqlResult) -> String {
    r.rows
        .iter()
        .map(|row| row.join(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The exact rows of the seeded configuration matrix — including both
/// cascade endpoints — return precisely what the optimizations-off oracle
/// returns, on every tier-1 dataset's canonical statement.
#[test]
fn exact_matrix_entries_match_oracle_on_all_seven_datasets() {
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);
        let oracle = run_sql(&ds, sql, OptimizerConfig::none(), name);
        for entry in common::seeded_config_matrix(SEED) {
            if !entry.exact {
                continue;
            }
            let run = run_sql(&ds, sql, entry.opt, name);
            let context = format!("{}/{}", id.name(), entry.label);
            assert_same_results(&run, &oracle, &context);
        }
    }
}

/// The escalate-everything endpoint specifically: every row crosses the
/// threshold, takes the expensive tier's answer verbatim, and the stage
/// ledger shows it — zero rows kept a cheap-tier answer.
#[test]
fn escalate_all_takes_the_expensive_answer_on_every_row() {
    let opt = OptimizerConfig::cascaded(CascadeConfig::new(CascadePlan::mini_to_sonnet(1.0, SEED)));
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);
        let run = run_sql(&ds, sql, opt, name);
        let oracle = run_sql(&ds, sql, OptimizerConfig::none(), name);
        assert_same_results(&run, &oracle, id.name());
        for s in &run.stages {
            let o = &s.report.opt;
            if o.rows_cheap + o.rows_escalated == 0 {
                continue; // stage without an LLM operator
            }
            assert_eq!(o.rows_cheap, 0, "{}: a row kept a cheap answer", id.name());
            assert_eq!(
                o.rows_escalated + o.rows_failed,
                o.rows_in,
                "{}: escalation ledger",
                id.name()
            );
        }
    }
}

/// A mid-threshold cascade — the lossy operating point — is a pure function
/// of its seed: two runs are identical on every sim-deterministic field,
/// and each stage's tier ledger reconciles exactly against the rows
/// offered, with the escalated token volume bounded by the cheap tier's
/// (escalated groups replay a subset of the cheap tier's requests).
#[test]
fn mid_threshold_cascade_is_deterministic_and_reconciles_the_tier_ledger() {
    let opt = OptimizerConfig::cascaded(CascadeConfig::new(CascadePlan::mini_to_sonnet(0.5, SEED)));
    let mut total_escalated = 0u64;
    let mut total_cheap = 0u64;
    for (id, name, sql) in common::seven_dataset_cases() {
        let ds = Dataset::generate_with_rows(id, 120);
        let a = run_sql(&ds, sql, opt, name);
        let b = run_sql(&ds, sql, opt, name);
        assert_sql_identical(&a, &b, id.name());
        for s in &a.stages {
            let o = &s.report.opt;
            if o.rows_cheap + o.rows_escalated == 0 {
                continue;
            }
            assert_eq!(
                o.rows_in,
                o.rows_cheap + o.rows_escalated + o.rows_failed,
                "{}: tier ledger does not cover the offered rows",
                id.name()
            );
            assert!(
                o.tier_agreements <= o.rows_escalated,
                "{}: more agreements than escalations",
                id.name()
            );
            assert!(
                o.esc_prompt_tokens <= o.cheap_prompt_tokens,
                "{}: escalation read more prompt tokens than the cheap pass",
                id.name()
            );
            if o.rows_escalated > 0 {
                assert!(o.esc_prompt_tokens > 0, "{}: free escalation", id.name());
            }
            total_escalated += o.rows_escalated;
            total_cheap += o.rows_cheap;
        }
    }
    assert!(total_escalated > 0, "threshold 0.5 never escalated");
    assert!(total_cheap > 0, "threshold 0.5 escalated everything");
}

/// The cascade's confidence stream *is* the serving layer's: the cost
/// model's `CascadePlan::confidence` and `llmqo::serve::confidence_unit`
/// are one counter-based draw, keyed by the same stream constant — so a
/// plan's escalation set can be predicted (and replayed) from either crate.
#[test]
fn cascade_confidence_is_the_serving_layers_confidence_stream() {
    assert_eq!(
        llmqo::serve::CONFIDENCE_DRAW,
        llmqo::costmodel::CONFIDENCE_DRAW,
        "serve and costmodel disagree on the confidence stream constant"
    );
    for seed in [0u64, 1, 42, SEED, u64::MAX] {
        let plan = CascadePlan::mini_to_sonnet(0.5, seed);
        for row in 0..512u64 {
            assert_eq!(
                plan.confidence(row),
                confidence_unit(seed, row),
                "seed {seed} row {row}"
            );
        }
    }
}

/// Escalation volume is monotone in the threshold: raising `escalate_below`
/// can only send more rows to the expensive tier, never fewer, and the
/// endpoints pin 0% and 100%.
#[test]
fn escalations_are_monotone_in_the_threshold() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 120);
    let (_, name, sql) = common::seven_dataset_cases()[0];
    let escalated = |threshold: f64| -> (u64, u64) {
        let opt = OptimizerConfig::cascaded(CascadeConfig::new(CascadePlan::mini_to_sonnet(
            threshold, SEED,
        )));
        let run = run_sql(&ds, sql, opt, name);
        let esc = run.stages.iter().map(|s| s.report.opt.rows_escalated).sum();
        let cheap = run.stages.iter().map(|s| s.report.opt.rows_cheap).sum();
        (esc, cheap)
    };
    let mut prev = 0u64;
    for threshold in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let (esc, cheap) = escalated(threshold);
        assert!(
            esc >= prev,
            "threshold {threshold}: escalations dropped ({esc} < {prev})"
        );
        if threshold <= 0.0 {
            assert_eq!(esc, 0, "threshold 0 must never escalate");
        }
        if threshold >= 1.0 {
            assert_eq!(cheap, 0, "threshold 1 must always escalate");
        }
        prev = esc;
    }
}

/// EXPLAIN and EXPLAIN ANALYZE render the cascade annotations — the
/// `-- cascade:` footer, the per-node tier split, and the measured per-tier
/// dollar ledger — when a cascade is configured, and none of them when it
/// is not, so pre-cascade renderings stay byte-identical.
#[test]
fn explain_renders_cascade_annotations_only_when_cascaded() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 60);
    let (_, name, sql) = common::seven_dataset_cases()[0];
    let cascaded =
        OptimizerConfig::cascaded(CascadeConfig::new(CascadePlan::mini_to_sonnet(0.5, SEED)));

    // Plain EXPLAIN: footer documents the plan without executing it.
    let explain_on = rendering(&run_sql(&ds, &format!("EXPLAIN {sql}"), cascaded, name));
    assert!(
        explain_on.contains("-- cascade: escalate below 0.50 (seed 53759)"),
        "missing cascade footer:\n{explain_on}"
    );
    assert!(
        !explain_on.contains("measured $"),
        "EXPLAIN must not claim measured costs:\n{explain_on}"
    );

    // EXPLAIN ANALYZE: per-node tier splits plus the measured ledger.
    let analyze_on = rendering(&run_sql(
        &ds,
        &format!("EXPLAIN ANALYZE {sql}"),
        cascaded,
        name,
    ));
    assert!(
        analyze_on.contains("rows cheap ") && analyze_on.contains(" / escalated "),
        "missing tier split columns:\n{analyze_on}"
    );
    assert!(
        analyze_on.contains("cheap + $") && analyze_on.contains(", measured $"),
        "missing measured dollar ledger:\n{analyze_on}"
    );

    // Cascades off: neither statement form may mention cascades at all, and
    // two independent runners render byte-identically (the golden gate).
    for statement in [format!("EXPLAIN {sql}"), format!("EXPLAIN ANALYZE {sql}")] {
        let off = rendering(&run_sql(&ds, &statement, OptimizerConfig::all(), name));
        assert!(
            !off.contains("cascade") && !off.contains("rows cheap"),
            "single-tier rendering gained cascade output:\n{off}"
        );
        let again = rendering(&run_sql(&ds, &statement, OptimizerConfig::all(), name));
        assert_eq!(off, again, "single-tier rendering is nondeterministic");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `TierPosterior` convergence: after enough observed batches at fixed
    /// empirical rates, both posterior means sit within 5% of the rates
    /// that generated the data, regardless of the priors.
    #[test]
    fn tier_posterior_converges_to_the_empirical_rates(
        esc_pm in 0u64..=1000,
        agree_pm in 0u64..=1000,
        esc_prior_pm in 0u64..=1000,
        agree_prior_pm in 0u64..=1000,
        batches in 20u64..120,
    ) {
        let total = 200u64;
        let escalated = total * esc_pm / 1000;
        let agreed = escalated * agree_pm / 1000;
        let mut post = TierPosterior::new(
            esc_prior_pm as f64 / 1000.0,
            agree_prior_pm as f64 / 1000.0,
            16.0,
        );
        for _ in 0..batches {
            post.observe(escalated, total, agreed);
        }
        let emp_esc = escalated as f64 / total as f64;
        prop_assert!(
            (post.escalation_rate() - emp_esc).abs() < 0.05,
            "escalation {} vs empirical {emp_esc}", post.escalation_rate()
        );
        if escalated > 0 {
            let emp_agree = agreed as f64 / escalated as f64;
            prop_assert!(
                (post.agreement_rate() - emp_agree).abs() < 0.05,
                "agreement {} vs empirical {emp_agree}", post.agreement_rate()
            );
        }
        prop_assert_eq!(post.observations(), batches * total);
    }

    /// Seed equality is escalation-set equality: two plans escalate exactly
    /// the same rows iff they share a seed (overwhelmingly, for distinct
    /// seeds over 256 rows), and every confidence lands in [0, 1).
    #[test]
    fn confidence_stream_is_a_pure_function_of_the_seed(seed in 0u64..u64::MAX) {
        let a = CascadePlan::mini_to_sonnet(0.5, seed);
        let b = CascadePlan::mini_to_sonnet(0.5, seed);
        let mut diverged = false;
        for row in 0..256u64 {
            let c = a.confidence(row);
            prop_assert!((0.0..1.0).contains(&c), "confidence {c} out of range");
            prop_assert_eq!(c, b.confidence(row));
            prop_assert_eq!(a.escalates(row), b.escalates(row));
            diverged |= a.escalates(row) != CascadePlan::mini_to_sonnet(0.5, seed ^ 1).escalates(row);
        }
        prop_assert!(diverged, "seed {seed} and {} share an escalation set", seed ^ 1);
    }
}
