//! Property-based tests over the reordering solvers (DESIGN.md §4
//! invariants 1–4): plan validity, score honesty, and the OPHR dominance
//! hierarchy, on randomized tables.

use llmqo::core::{
    phc_of_plan, Cell, FallbackOrdering, FunctionalDeps, Ggr, GgrConfig, Ophr, OriginalOrder,
    ReorderTable, Reorderer, SortedFixed, StatFixed, ValueId,
};
use proptest::prelude::*;

/// Strategy: a small random table as (rows × cols) of (pool index, length),
/// with per-column pools so duplicates are common.
fn table_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = ReorderTable> {
    (1..=max_cols, 1..=max_rows)
        .prop_flat_map(move |(m, n)| {
            proptest::collection::vec(proptest::collection::vec((0u32..4, 1u32..6), m), n)
        })
        .prop_map(|rows| {
            let m = rows[0].len();
            let cols = (0..m).map(|c| format!("c{c}")).collect();
            let mut t = ReorderTable::new(cols).unwrap();
            for row in &rows {
                let cells = row
                    .iter()
                    .enumerate()
                    .map(|(c, &(v, _))| {
                        // Length is a function of (col, value) so exact-match
                        // semantics hold (same value ⇒ same fragment).
                        Cell::new(ValueId::from_raw(c as u32 * 16 + v), 1 + (v + c as u32) % 5)
                    })
                    .collect();
                t.push_row(cells).unwrap();
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_solvers_produce_valid_plans(t in table_strategy(12, 4)) {
        let fds = FunctionalDeps::empty(t.ncols());
        for solver in [
            &OriginalOrder as &dyn Reorderer,
            &SortedFixed,
            &StatFixed,
            &Ggr::default(),
        ] {
            let s = solver.reorder(&t, &fds).unwrap();
            prop_assert!(s.plan.validate(&t).is_ok(), "{} invalid", solver.name());
        }
    }

    #[test]
    fn ophr_dominates_every_other_solver(t in table_strategy(7, 3)) {
        let fds = FunctionalDeps::empty(t.ncols());
        let opt = Ophr::unbounded().reorder(&t, &fds).unwrap();
        prop_assert_eq!(opt.claimed_phc, phc_of_plan(&t, &opt.plan).phc);
        for solver in [
            &OriginalOrder as &dyn Reorderer,
            &SortedFixed,
            &StatFixed,
            &Ggr::default(),
            &Ggr::new(GgrConfig::exhaustive()),
        ] {
            let s = solver.reorder(&t, &fds).unwrap();
            let actual = phc_of_plan(&t, &s.plan).phc;
            prop_assert!(
                actual <= opt.claimed_phc,
                "{} scored {} above optimal {}",
                solver.name(), actual, opt.claimed_phc
            );
        }
    }

    #[test]
    fn ggr_claim_is_a_lower_bound_without_fds(t in table_strategy(14, 4)) {
        // With no (or exact) FDs, GGR's claimed score counts real hits only;
        // recomputation may find extra accidental boundary hits.
        let fds = FunctionalDeps::empty(t.ncols());
        for config in [GgrConfig::paper(), GgrConfig::exhaustive(), GgrConfig {
            fallback: FallbackOrdering::StatFixed,
            ..GgrConfig::paper()
        }] {
            let s = Ggr::new(config).reorder(&t, &fds).unwrap();
            let actual = phc_of_plan(&t, &s.plan).phc;
            prop_assert!(
                actual >= s.claimed_phc,
                "claim {} exceeds ground truth {}",
                s.claimed_phc, actual
            );
        }
    }

    #[test]
    fn ggr_beats_or_matches_original(t in table_strategy(14, 4)) {
        let fds = FunctionalDeps::empty(t.ncols());
        let ggr = Ggr::default().reorder(&t, &fds).unwrap();
        let orig = OriginalOrder.reorder(&t, &fds).unwrap();
        prop_assert!(
            phc_of_plan(&t, &ggr.plan).phc >= phc_of_plan(&t, &orig.plan).phc * 99 / 100
        );
    }

    #[test]
    fn plans_are_deterministic(t in table_strategy(10, 3)) {
        let fds = FunctionalDeps::empty(t.ncols());
        let a = Ggr::default().reorder(&t, &fds).unwrap();
        let b = Ggr::default().reorder(&t, &fds).unwrap();
        prop_assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn wrong_fds_never_break_validity(t in table_strategy(10, 3)) {
        // Deliberately wrong FDs (claiming all columns equivalent) must not
        // produce invalid plans — only possibly worse schedules.
        let m = t.ncols();
        if m >= 2 {
            let groups = vec![(0..m as u32).collect::<Vec<_>>()];
            let fds = FunctionalDeps::from_groups(m, groups).unwrap();
            let s = Ggr::default().reorder(&t, &fds).unwrap();
            prop_assert!(s.plan.validate(&t).is_ok());
        }
    }
}

#[test]
fn exact_fds_make_ggr_claims_exact() {
    // Build a table where col0 ↔ col1 exactly; GGR's FD-aware HITCOUNT must
    // then claim precisely the ground-truth PHC (no estimation error).
    let cols = vec!["k".to_string(), "name".to_string(), "x".to_string()];
    let mut t = ReorderTable::new(cols).unwrap();
    for r in 0..30u32 {
        let k = r % 5;
        t.push_row(vec![
            Cell::new(ValueId::from_raw(k), 3),
            Cell::new(ValueId::from_raw(100 + k), 7),
            Cell::new(ValueId::from_raw(1000 + r), 2),
        ])
        .unwrap();
    }
    let fds = FunctionalDeps::from_groups(3, vec![vec![0, 1]]).unwrap();
    let s = Ggr::new(GgrConfig::exhaustive()).reorder(&t, &fds).unwrap();
    assert_eq!(s.claimed_phc, phc_of_plan(&t, &s.plan).phc);
    // All 5 groups captured: (30 − 5) rows × (3² + 7²) = 25 × 58.
    assert_eq!(s.claimed_phc, 25 * 58);
}

#[test]
fn ophr_budget_is_honored_under_pressure() {
    // A 24-row, 4-column table with rich group structure: the exact solver
    // must either finish or report budget exhaustion, never hang.
    let cols = (0..4).map(|c| format!("c{c}")).collect();
    let mut t = ReorderTable::new(cols).unwrap();
    for r in 0..24u32 {
        t.push_row(vec![
            Cell::new(ValueId::from_raw(r % 2), 2),
            Cell::new(ValueId::from_raw(10 + r % 3), 2),
            Cell::new(ValueId::from_raw(20 + r % 4), 2),
            Cell::new(ValueId::from_raw(30 + r % 6), 2),
        ])
        .unwrap();
    }
    let fds = FunctionalDeps::empty(4);
    let start = std::time::Instant::now();
    let result = Ophr::with_budget(std::time::Duration::from_millis(200)).reorder(&t, &fds);
    assert!(start.elapsed() < std::time::Duration::from_secs(30));
    match result {
        Ok(s) => assert!(s.plan.validate(&t).is_ok()),
        Err(e) => assert!(e.to_string().contains("budget")),
    }
}
