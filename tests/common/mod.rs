//! Shared harness for the differential suites (ISSUE 10): the engine
//! constructor, SQL runners, result-equality helpers, the seven-dataset
//! statement table, cluster workload builders, and the seeded optimizer
//! config matrix that every suite used to duplicate locally.
//!
//! Compiled once per test binary via `mod common;` — each binary uses a
//! different subset, hence the file-wide `dead_code` allowance.

#![allow(dead_code)]

use llmqo::cluster::{
    ClusterConfig, ClusterRequest, ClusterSim, LeastLoaded, PrefixAffinity, RoundRobin, Router,
};
use llmqo::core::Ggr;
use llmqo::costmodel::CascadePlan;
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{CascadeConfig, OptimizerConfig, QueryExecutor, SqlResult, SqlRunner};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine, SimRequest,
};
use llmqo::tokenizer::Tokenizer;

/// Every tier-1 dataset generated at `rows` rows — the standard iteration
/// of the differential suites.
pub fn tier1_datasets(rows: usize) -> impl Iterator<Item = (DatasetId, Dataset)> {
    DatasetId::all()
        .into_iter()
        .map(move |id| (id, Dataset::generate_with_rows(id, rows)))
}

/// The paper's primary deployment: Llama-3-8B on one L4, default engine
/// config — the engine every differential suite runs against.
pub fn engine() -> SimEngine {
    engine_with(EngineConfig::default())
}

/// Same deployment under a custom engine config.
pub fn engine_with(config: EngineConfig) -> SimEngine {
    SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        config,
    )
}

/// Balanced ground truth: "Yes" on every third row.
pub fn mod3_truth(row: usize) -> String {
    if row.is_multiple_of(3) {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

/// Skewed ground truth: ~5% of rows are "Yes", so a `= 'Yes'` filter is
/// picky (sel ≈ 0.05) and a `<> 'Yes'` filter is lax (sel ≈ 0.95) — both
/// far from the optimizer's uniform 0.5 prior.
pub fn skewed_truth(row: usize) -> String {
    if row.is_multiple_of(20) {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

/// Runs one SQL statement on a fresh engine/executor/runner stack under
/// `opt`, with the balanced mod-3 truth.
pub fn run_sql(ds: &Dataset, sql: &str, opt: OptimizerConfig, table_name: &str) -> SqlResult {
    run_sql_with_truth(ds, sql, opt, table_name, &mod3_truth)
}

/// [`run_sql`] with a caller-supplied ground truth.
pub fn run_sql_with_truth(
    ds: &Dataset,
    sql: &str,
    opt: OptimizerConfig,
    table_name: &str,
    truth: &dyn Fn(usize) -> String,
) -> SqlResult {
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
    runner.register(table_name, &ds.table, &ds.fds);
    runner
        .run(sql, truth)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
}

/// Result-level equality: columns, rows, aggregate.
pub fn assert_same_results(a: &SqlResult, b: &SqlResult, context: &str) {
    assert_eq!(a.columns, b.columns, "{context}: columns diverged");
    assert_eq!(a.rows, b.rows, "{context}: rows diverged");
    assert_eq!(a.aggregate, b.aggregate, "{context}: aggregate diverged");
}

/// Equality on every sim-deterministic field of a SQL result.
/// `ExecutionReport::solve_time_s` is wall-clock and differs between any
/// two runs, so whole-struct `==` is the one comparison we cannot make.
pub fn assert_sql_identical(a: &SqlResult, b: &SqlResult, context: &str) {
    assert_eq!(a.columns, b.columns, "{context}: columns");
    assert_eq!(a.rows, b.rows, "{context}: rows");
    assert_eq!(a.aggregate, b.aggregate, "{context}: aggregate");
    assert_eq!(a.notes, b.notes, "{context}: notes");
    assert_eq!(a.stages.len(), b.stages.len(), "{context}: stage count");
    for (x, y) in a.stages.iter().zip(&b.stages) {
        assert_eq!(x.outputs, y.outputs, "{context}: stage outputs");
        assert_eq!(x.failed_rows, y.failed_rows, "{context}: failed rows");
        assert_eq!(x.aggregate, y.aggregate, "{context}: stage aggregate");
        assert_eq!(x.report.query, y.report.query, "{context}: stage query");
        assert_eq!(x.report.engine, y.report.engine, "{context}: engine report");
        assert_eq!(x.report.opt, y.report.opt, "{context}: opt stats");
    }
}

/// One multi-LLM-filter statement per tier-1 dataset (some with `LIMIT`),
/// written against each dataset's real schema — the canonical seven-way
/// differential workload.
pub fn seven_dataset_cases() -> [(DatasetId, &'static str, &'static str); 7] {
    [
        (
            DatasetId::Movies,
            "movies",
            "SELECT movietitle FROM movies \
             WHERE LLM('kids?', movieinfo, reviewcontent) = 'Yes' \
             AND LLM('fresh?', reviewtype, topcritic) <> 'Yes'",
        ),
        (
            DatasetId::Products,
            "products",
            "SELECT product_title FROM products \
             WHERE LLM('useful?', text, review_title) = 'Yes' \
             AND LLM('verified?', verified_purchase, rating) <> 'Yes'",
        ),
        (
            DatasetId::Bird,
            "bird",
            "SELECT PostId FROM bird \
             WHERE LLM('stats?', Body, Text) = 'Yes' \
             AND LLM('old?', PostDate) <> 'Yes' LIMIT 6",
        ),
        (
            DatasetId::Pdmx,
            "pdmx",
            "SELECT artistname FROM pdmx \
             WHERE LLM('complex?', complexity, genre) = 'Yes' \
             AND LLM('grouped?', groups, composername) <> 'Yes'",
        ),
        (
            DatasetId::Beer,
            "beer",
            "SELECT beer/name FROM beer \
             WHERE LLM('good?', review/overall, review/palate) = 'Yes' \
             AND LLM('ipa?', beer/style) <> 'Yes' LIMIT 8",
        ),
        (
            DatasetId::Squad,
            "squad",
            "SELECT question FROM squad \
             WHERE LLM('answerable?', question, context1) = 'Yes' \
             AND LLM('short?', context2) <> 'Yes'",
        ),
        (
            DatasetId::Fever,
            "fever",
            "SELECT claim FROM fever \
             WHERE LLM('supported?', claim, context1) = 'Yes' \
             AND LLM('refuted?', context2, context3) <> 'Yes' LIMIT 5",
        ),
    ]
}

/// Schema-generic statements over a dataset's first two columns: a single
/// filter, a two-filter conjunction with `LIMIT`, and an LLM projection —
/// usable on every tier-1 dataset without per-dataset SQL.
pub fn generic_statements(ds: &Dataset) -> Vec<String> {
    let names = ds.table.schema().names();
    let (c0, c1) = (names[0].to_string(), names[1 % names.len()].to_string());
    vec![
        format!("SELECT {c0} FROM t WHERE LLM('keep?', {c1}) = 'Yes'"),
        format!(
            "SELECT {c0} FROM t WHERE LLM('a?', {c0}, {c1}) = 'Yes' \
             AND LLM('b?', {c1}) <> 'No' LIMIT 7"
        ),
        format!("SELECT LLM('summarize', {c1}) AS s FROM t WHERE LLM('keep?', {c0}) = 'Yes'"),
    ]
}

/// A grouped shared-prefix engine workload: `groups` groups of `per_group`
/// requests sharing a 48-token prefix with 12 unique tail tokens and 4
/// output tokens — exercising admission, caching, eviction, and decode.
pub fn grouped_requests(groups: usize, per_group: usize) -> Vec<SimRequest> {
    (0..groups * per_group)
        .map(|i| {
            let g = (i / per_group) as u32;
            let mut toks: Vec<u32> = (0..48).map(|j| g * 1000 + j).collect();
            toks.extend((0..12).map(|j| 500_000 + i as u32 * 64 + j));
            SimRequest::from_tokens(i, toks, 4)
        })
        .collect()
}

/// [`grouped_requests`] tagged with the group index as the routing prefix
/// key, for cluster dispatch.
pub fn grouped_workload(groups: usize, per_group: usize) -> Vec<ClusterRequest> {
    grouped_requests(groups, per_group)
        .into_iter()
        .enumerate()
        .map(|(i, r)| ClusterRequest::new(r, (i / per_group) as u64))
        .collect()
}

/// [`grouped_workload`] where every `prio_every`-th request is a priority-1
/// request of tenant 1 (the "premium" tenant), the rest best-effort
/// tenant-0 traffic. `prio_every == 0` disables the premium tier.
pub fn prioritized_workload(
    groups: usize,
    per_group: usize,
    prio_every: usize,
) -> Vec<ClusterRequest> {
    grouped_workload(groups, per_group)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            if prio_every > 0 && i.is_multiple_of(prio_every) {
                r.tenant(1).priority(1)
            } else {
                r
            }
        })
        .collect()
}

/// A cluster simulator over the standard engine.
pub fn cluster_sim(replicas: usize, queue_cap: usize) -> ClusterSim {
    ClusterSim::new(
        engine(),
        ClusterConfig {
            replicas,
            queue_cap,
        },
    )
}

/// Fresh instances of all four built-in routing policies.
pub fn routers() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(RoundRobin),
        Box::new(LeastLoaded),
        Box::new(PrefixAffinity::default()),
        Box::new(PrefixAffinity::bounded(1.25)),
    ]
}

/// One entry of the seeded optimizer configuration matrix.
pub struct MatrixEntry {
    /// Human-readable label for assertion messages.
    pub label: &'static str,
    /// The optimizer configuration under test.
    pub opt: OptimizerConfig,
    /// Whether this configuration is *provably* result-identical to the
    /// optimizations-off oracle. Cascade configs that keep cheap-tier
    /// answers on an imperfect cheap model trade accuracy for cost, so
    /// their entries carry `exact: false`.
    pub exact: bool,
}

/// The seeded configuration matrix: every optimizer mode the repo ships,
/// including the cascade endpoints. Entries with `exact == true` must be
/// byte-identical to `OptimizerConfig::none()` on any statement; equal
/// seeds reproduce the matrix (and each cascade's confidence stream)
/// exactly.
pub fn seeded_config_matrix(seed: u64) -> Vec<MatrixEntry> {
    let mut pipelined = OptimizerConfig::pipelined(3);
    pipelined.pipeline_batch_rows = 16;
    // A cheap tier that is always right: never escalating still equals the
    // oracle, isolating the cascade *machinery* from cheap-model error.
    let perfect_cheap = {
        let mut plan = CascadePlan::mini_to_sonnet(0.0, seed);
        plan.cheap.base_accuracy = 1.0;
        plan
    };
    vec![
        MatrixEntry {
            label: "none",
            opt: OptimizerConfig::none(),
            exact: true,
        },
        MatrixEntry {
            label: "all",
            opt: OptimizerConfig::all(),
            exact: true,
        },
        MatrixEntry {
            label: "static-only",
            opt: OptimizerConfig::static_only(),
            exact: true,
        },
        MatrixEntry {
            label: "pipelined",
            opt: pipelined,
            exact: true,
        },
        MatrixEntry {
            label: "cascade-escalate-all",
            opt: OptimizerConfig::cascaded(CascadeConfig::new(CascadePlan::mini_to_sonnet(
                1.0, seed,
            ))),
            exact: true,
        },
        MatrixEntry {
            label: "cascade-perfect-cheap",
            opt: OptimizerConfig::cascaded(CascadeConfig::new(perfect_cheap)),
            exact: true,
        },
        MatrixEntry {
            label: "cascade-mid",
            opt: OptimizerConfig::cascaded(CascadeConfig::new(CascadePlan::mini_to_sonnet(
                0.5, seed,
            ))),
            exact: false,
        },
    ]
}
