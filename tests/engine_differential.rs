//! Differential contract of the event-driven engine rewrite: the
//! macro-stepping [`EngineSession`] must produce **byte-identical**
//! completions, reports, and cache statistics to [`SessionReference`] — the
//! pre-rewrite per-token loop frozen verbatim — across cache modes,
//! chunked-prefill pressure, sequence-slot and KV backpressure, and
//! mid-flight arrivals. The same pattern PR 2 used for the solvers
//! (`tests/solver_differential.rs`).
//!
//! Comparisons use `==` on [`SessionReport`] (f64 fields included): the
//! macro-step replays the reference's float accumulation order, so clocks
//! and times must match to the last bit, not within a tolerance.

mod common;

use common::engine_with as engine;
use llmqo::serve::{EngineConfig, EngineError, EngineSession, SessionReference, SimRequest};
use proptest::prelude::*;

/// Drains both loops to idle and asserts identical cache stats, reports,
/// and completion streams.
fn assert_drained_equal(mut session: EngineSession, mut reference: SessionReference) {
    while session.step_until(None).unwrap() {}
    while reference.step().unwrap() {}
    assert_eq!(session.cache_stats(), reference.cache_stats());
    assert_eq!(session.finish(), reference.finish());
}

/// Engine configurations that exercise every scheduling regime: cache
/// on/off, strict vs in-flight sharing, tight and loose prefill budgets
/// (chunked-prefill pressure), and small seat counts (slot backpressure).
fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    (
        prop::sample::select(vec![8usize, 16, 32]),
        prop::sample::select(vec![64usize, 512, 8192]),
        prop::sample::select(vec![2usize, 8, 256]),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(
            |(block_size, max_batch_tokens, max_num_seqs, cache, share)| EngineConfig {
                block_size,
                max_batch_tokens,
                max_num_seqs,
                enable_prefix_cache: cache,
                in_flight_sharing: share,
                ..EngineConfig::default()
            },
        )
}

/// A batch of requests with a shared instruction prefix and variable unique
/// tails / output lengths (including zero-output and long decode runs).
fn workload_strategy() -> impl Strategy<Value = Vec<SimRequest>> {
    (
        1usize..40,
        8usize..96,
        proptest::collection::vec((0usize..80, 0u32..48), 1..40),
    )
        .prop_map(|(n, shared, tails)| {
            (0..n)
                .map(|i| {
                    let (tail, output) = tails[i % tails.len()];
                    let mut toks: Vec<u32> = (0..shared as u32).collect();
                    toks.extend((0..tail as u32).map(|j| 1_000_000 + i as u32 * 512 + j));
                    SimRequest::from_tokens(i, toks, output)
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch jobs: enqueue everything, drain, compare byte for byte.
    #[test]
    fn batch_jobs_match_reference(config in config_strategy(), reqs in workload_strategy()) {
        let e = engine(config);
        let mut session = e.session().unwrap();
        let mut reference = e.reference_session().unwrap();
        for r in &reqs {
            session.enqueue_ref(r);
            reference.enqueue(r.clone());
        }
        assert_drained_equal(session, reference);
    }

    /// Mid-flight arrivals: run both loops to the same instants (the macro
    /// loop bounded by a horizon, the reference by polling the clock), feed
    /// late arrivals, drain. Timestamps, not step counts, define the
    /// rendezvous — the two loops take different numbers of calls to get
    /// there, but must pass through identical clocks.
    #[test]
    fn mid_flight_arrivals_match_reference(
        config in config_strategy(),
        first in workload_strategy(),
        second in workload_strategy(),
        cut in 1u32..40,
    ) {
        let e = engine(config);
        let mut session = e.session().unwrap();
        let mut reference = e.reference_session().unwrap();
        for r in &first {
            session.enqueue_ref(r);
            reference.enqueue(r.clone());
        }
        // Interrupt mid-flight at a workload-dependent instant.
        let t = f64::from(cut) * 0.05;
        while !session.is_idle() && session.clock() < t {
            session.step_until(Some(t)).unwrap();
        }
        while !reference.is_idle() && reference.clock() < t {
            reference.step().unwrap();
        }
        prop_assert_eq!(session.clock(), reference.clock());
        prop_assert_eq!(session.completed(), reference.completed());
        // Late arrivals land at time `t` (idle sessions fast-forward).
        session.advance_to(t);
        reference.advance_to(t);
        for r in &second {
            let mut r = r.clone();
            r.id += 10_000;
            session.enqueue_ref(&r);
            reference.enqueue(r);
        }
        assert_drained_equal(session, reference);
    }

    /// Incremental batched submission (the relational layer's lazy-LIMIT
    /// pattern): several `run_batch` calls on one persistent session.
    #[test]
    fn incremental_batches_match_reference(
        config in config_strategy(),
        reqs in workload_strategy(),
        split in 0usize..40,
    ) {
        let e = engine(config);
        let cut = split.min(reqs.len());
        let mut session = e.session().unwrap();
        let mut reference = e.reference_session().unwrap();
        let a = session.run_batch(&reqs[..cut]).unwrap().len();
        let b = reference.run_batch(&reqs[..cut]).unwrap().len();
        prop_assert_eq!(a, b);
        session.run_batch(&reqs[cut..]).unwrap();
        reference.run_batch(&reqs[cut..]).unwrap();
        assert_drained_equal(session, reference);
    }
}

#[test]
fn kv_backpressure_blocked_heads_match_reference() {
    // Requests whose combined KV footprint far exceeds capacity: the
    // admission queue's head spends most of the job blocked on memory —
    // the regime where the reference re-flattens and re-hashes the head
    // prompt every step and the macro-stepper must prove it stays blocked.
    for config in [EngineConfig::default(), EngineConfig::no_cache()] {
        let e = engine(config);
        let reqs: Vec<SimRequest> = (0..200)
            .map(|i| {
                SimRequest::from_tokens(i, (0..2048u32).map(|j| i as u32 * 4096 + j).collect(), 48)
            })
            .collect();
        let mut session = e.session().unwrap();
        let mut reference = e.reference_session().unwrap();
        for r in &reqs {
            session.enqueue_ref(r);
            reference.enqueue(r.clone());
        }
        assert_drained_equal(session, reference);
    }
}

#[test]
fn decode_heavy_lockstep_batches_match_reference() {
    // Uniform long outputs produce the deepest steady-state decode runs —
    // the macro-stepper's best case must still be bit-identical.
    let e = engine(EngineConfig::default());
    let reqs: Vec<SimRequest> = (0..128)
        .map(|i| {
            let mut t: Vec<u32> = (0..160).collect();
            t.extend((0..32u32).map(|j| 500_000 + i as u32 * 64 + j));
            SimRequest::from_tokens(i, t, 256)
        })
        .collect();
    let mut session = e.session().unwrap();
    let mut reference = e.reference_session().unwrap();
    for r in &reqs {
        session.enqueue_ref(r);
        reference.enqueue(r.clone());
    }
    assert_drained_equal(session, reference);
}

#[test]
fn oversized_requests_error_identically() {
    let e = engine(EngineConfig::default());
    let cap_tokens = e.deployment().kv_capacity_tokens(e.config()) as u32;
    let huge = SimRequest::from_tokens(7, (0..cap_tokens + 64).collect(), 1);
    let mut session = e.session().unwrap();
    let mut reference = e.reference_session().unwrap();
    session.enqueue_ref(&huge);
    reference.enqueue(huge.clone());
    let a = loop {
        match session.step_until(None) {
            Ok(_) => {}
            Err(err) => break err,
        }
    };
    let b = loop {
        match reference.step() {
            Ok(_) => {}
            Err(err) => break err,
        }
    };
    assert_eq!(a, b);
    assert!(matches!(a, EngineError::RequestTooLarge { id: 7, .. }));
}

#[test]
fn reordered_relational_workload_matches_reference() {
    // End-to-end shape: a GGR-reordered movies filter workload (the
    // fig_cluster feed), whose requests share solver-arranged prefixes.
    use llmqo::core::{Ggr, Reorderer};
    use llmqo::datasets::{Dataset, DatasetId};
    use llmqo::relational::{encode_table, plan_requests, project_fds, QueryKind};
    use llmqo::tokenizer::Tokenizer;

    let ds = Dataset::generate_with_rows(DatasetId::Movies, 400);
    let query = ds.query_of_kind(QueryKind::Filter).expect("filter query");
    let encoded = encode_table(&Tokenizer::new(), &ds.table, query).expect("encode");
    let fds = project_fds(&ds.fds, &encoded.used_cols);
    let solution = Ggr::default().reorder(&encoded.reorder, &fds).unwrap();
    let requests = plan_requests(&encoded, &solution.plan, query);

    for config in [EngineConfig::default(), EngineConfig::no_cache()] {
        let e = engine(config);
        let mut session = e.session().unwrap();
        let mut reference = e.reference_session().unwrap();
        for r in &requests {
            session.enqueue_ref(r);
            reference.enqueue(r.clone());
        }
        assert_drained_equal(session, reference);
    }
}
