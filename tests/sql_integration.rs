//! The SQL front-end against the benchmark datasets: the paper's Appendix A
//! statements parse, execute through GGR, and agree with the programmatic
//! API.

use llmqo::core::{Ggr, OriginalOrder};
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{parse_sql, LlmQuery, QueryExecutor, SqlRunner};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
};
use llmqo::tokenizer::Tokenizer;

fn engine() -> SimEngine {
    SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        EngineConfig::default(),
    )
}

#[test]
fn paper_appendix_a_statements_parse() {
    let statements = [
        "SELECT t.movietitle FROM MOVIES WHERE LLM('Given the following fields, \
         determine whether the movie is suitable for kids. Answer ONLY with \
         Yes or No.', movieinfo, reviewcontent, reviewtype, movietitle) = 'Yes'",
        "SELECT LLM('Given the following information, summarize good qualities \
         in this movie that led to a favorable rating.', reviewcontent, movieinfo) \
         FROM MOVIES",
        "SELECT AVG(LLM('Rate sentiment in numerical values from 1 (bad) to 5 \
         (good).', reviewcontent, movieinfo)) AS AverageScore FROM MOVIES",
        "SELECT LLM('Given the information about a movie, summarize the good \
         qualities that led to a favorable rating.', reviewtype, reviewcontent, \
         movieinfo, genres) FROM MOVIES WHERE LLM('Given the following review, \
         answer whether the sentiment is POSITIVE or NEGATIVE.', reviewcontent) \
         = 'NEGATIVE'",
    ];
    for sql in statements {
        let stmt = parse_sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(stmt.table.to_lowercase(), "movies");
    }
}

#[test]
fn sql_filter_agrees_with_programmatic_api() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 120);
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();

    // Programmatic path.
    let query = LlmQuery::filter(
        "api-filter",
        "Suitable for kids? Answer ONLY 'Yes' or 'No'.",
        vec![
            "movieinfo".into(),
            "reviewcontent".into(),
            "movietitle".into(),
        ],
        vec!["Yes".into(), "No".into()],
        "Yes",
        2.0,
    );
    let truth = |row: usize| {
        if row.is_multiple_of(4) {
            "Yes".into()
        } else {
            "No".into()
        }
    };
    let api = executor
        .execute(&ds.table, &query, &solver, &ds.fds, &truth)
        .unwrap();

    // SQL path with the same prompt, fields, and truth.
    let mut runner = SqlRunner::new(&executor, &solver);
    runner.register("movies", &ds.table, &ds.fds);
    let sql = runner
        .run(
            "SELECT movietitle FROM movies WHERE \
             LLM('Suitable for kids? Answer ONLY ''Yes'' or ''No''.', \
             movieinfo, reviewcontent, movietitle) = 'Yes'",
            &truth,
        )
        .unwrap();
    assert_eq!(sql.rows.len(), api.selected_rows.len());
    // Returned titles match the selected rows, in row order.
    for (row_out, &r) in sql.rows.iter().zip(&api.selected_rows) {
        assert_eq!(row_out[0], ds.table.value(r, 2).to_string());
    }
}

#[test]
fn sql_multi_stage_runs_projection_over_filtered_rows() {
    let ds = Dataset::generate_with_rows(DatasetId::Products, 100);
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver);
    runner.register("products", &ds.table, &ds.fds);
    let truth = |row: usize| {
        if row < 40 {
            "NEGATIVE".to_string()
        } else {
            "POSITIVE".to_string()
        }
    };
    let res = runner
        .run(
            "SELECT LLM('Summarize the product and review.', products.*) AS s \
             FROM products WHERE LLM('Sentiment?', text) = 'NEGATIVE'",
            &truth,
        )
        .unwrap();
    assert_eq!(res.stages.len(), 2, "filter stage plus projection stage");
    assert_eq!(res.rows.len(), 40);
    // Both stages report serving measurements.
    assert!(res.stages[0].report.engine.job_completion_time_s > 0.0);
    assert!(res.stages[1].report.engine.job_completion_time_s > 0.0);
}

#[test]
fn sql_runner_respects_reorderer_choice() {
    let ds = Dataset::generate_with_rows(DatasetId::Bird, 150);
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let truth = |_: usize| "YES".to_string();
    let run_with = |solver: &dyn llmqo::core::Reorderer| {
        let mut runner = SqlRunner::new(&executor, solver);
        runner.register("bird", &ds.table, &ds.fds);
        runner
            .run(
                "SELECT PostId FROM bird WHERE LLM('Stats-related?', Body, Text) = 'YES'",
                &truth,
            )
            .unwrap()
    };
    let ggr = run_with(&Ggr::default());
    let orig = run_with(&OriginalOrder);
    assert_eq!(ggr.rows, orig.rows, "results identical");
    assert!(
        ggr.stages[0].report.engine.prefix_hit_rate()
            >= orig.stages[0].report.engine.prefix_hit_rate(),
        "GGR schedule hits at least as often"
    );
}
