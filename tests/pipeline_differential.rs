//! Differential contract of pipelined, cluster-parallel SQL execution
//! (ISSUE 8): slicing a statement into overlapped micro-batches and fanning
//! each LLM operator out across a replica group is a *physical* change —
//! results must stay row-for-row identical to the sequential relay and to
//! the optimizations-off oracle on every tier-1 dataset. Likewise,
//! macro-stepping a backpressured cluster phase to the next known timed
//! event must reproduce the single-stepped schedule bit for bit under all
//! four built-in routers, while actually taking macro-steps.

mod common;

use common::{assert_same_results, engine, run_sql};
use llmqo::cluster::{
    tag_requests, ClusterReport, ClusterRequest, ClusterSim, LeastLoaded, PrefixAffinity,
    ReplicaSnapshot, RoundRobin, Router,
};
use llmqo::core::{FunctionalDeps, Ggr, Reorderer};
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{
    encode_table, plan_requests, LlmQuery, OptimizerConfig, QueryExecutor, Schema, SqlResult,
    SqlRunner, StatementFaults, Table,
};
use llmqo::serve::OracleLlm;
use llmqo::tokenizer::Tokenizer;

/// The pipelined config under test: fan-out across 3 replicas with
/// micro-batches small enough that 60-row tables take several.
fn pipelined() -> OptimizerConfig {
    let mut opt = OptimizerConfig::pipelined(3);
    opt.pipeline_batch_rows = 16;
    opt
}

/// Pipelined + fan-out execution returns exactly what the sequential relay
/// and the optimizations-off oracle return, on every tier-1 dataset, for
/// single-filter, multi-filter + LIMIT, and LLM-projection statements built
/// from each dataset's own schema.
#[test]
fn pipelined_matches_sequential_and_oracle_on_all_datasets() {
    for (id, ds) in common::tier1_datasets(60) {
        for sql in &common::generic_statements(&ds) {
            let piped = run_sql(&ds, sql, pipelined(), "t");
            let sequential = run_sql(&ds, sql, OptimizerConfig::all(), "t");
            let oracle = run_sql(&ds, sql, OptimizerConfig::none(), "t");
            let context = format!("{}: {sql}", id.name());
            assert_same_results(&piped, &sequential, &context);
            assert_same_results(&piped, &oracle, &context);
            assert!(
                piped
                    .notes
                    .iter()
                    .any(|n| n.contains("pipelined execution")),
                "{context}: no pipeline runtime note"
            );
        }
    }
}

/// `AVG(LLM(...))` under pipelined fan-out agrees with both baselines, and
/// the pipelined statement's stages all report work (the fan-out merge did
/// not lose replica reports).
#[test]
fn pipelined_aggregate_is_identical_and_merges_replica_reports() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 90);
    // The shared truth function answers "Yes" on even rows and a 1–5 score
    // on odd rows; the negated filter keeps the score-bearing rows for AVG.
    let sql = "SELECT AVG(LLM('rate', reviewcontent, movieinfo)) AS score FROM movies \
               WHERE LLM('keep?', movietitle) <> 'Yes'";
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let run = |opt: OptimizerConfig| {
        let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
        runner.register("movies", &ds.table, &ds.fds);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".to_string()
            } else {
                ((row % 5) + 1).to_string()
            }
        };
        runner.run(sql, &truth).unwrap()
    };
    let piped = run(pipelined());
    let sequential = run(OptimizerConfig::all());
    let oracle = run(OptimizerConfig::none());
    assert_same_results(&piped, &sequential, sql);
    assert_same_results(&piped, &oracle, sql);
    assert!(piped.aggregate.is_some());
    for stage in &piped.stages {
        assert!(stage.report.engine.completed > 0, "stage lost completions");
        assert!(stage.report.engine.job_completion_time_s > 0.0);
    }
}

/// EXPLAIN ANALYZE under pipelined execution renders the per-node overlap
/// columns and the pipeline footer; the classic relay rendering carries
/// neither.
#[test]
fn explain_analyze_shows_overlap_stats_only_when_pipelined() {
    let ds = Dataset::generate_with_rows(DatasetId::Products, 50);
    let sql = "EXPLAIN ANALYZE SELECT product_title FROM products \
               WHERE LLM('useful?', text) = 'Yes' AND LLM('real?', review_title) = 'Yes'";
    let piped = run_sql(&ds, sql, pipelined(), "products");
    let text = |r: &SqlResult| {
        r.rows
            .iter()
            .map(|row| row.join(""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let piped_text = text(&piped);
    assert!(
        piped_text.contains("busy "),
        "missing overlap: {piped_text}"
    );
    assert!(
        piped_text.contains("done "),
        "missing overlap: {piped_text}"
    );
    assert!(
        piped_text.contains("-- pipeline: replicas 3, micro-batch 16 rows, makespan "),
        "missing pipeline footer: {piped_text}"
    );
    let relay = run_sql(&ds, sql, OptimizerConfig::all(), "products");
    let relay_text = text(&relay);
    assert!(
        !relay_text.contains("busy "),
        "relay gained overlap columns"
    );
    assert!(!relay_text.contains("-- pipeline:"), "relay gained footer");
}

// ---------------------------------------------------------------------------
// Macro-stepped backpressure ≡ single-stepped oracle
// ---------------------------------------------------------------------------

/// A duplicate-heavy GGR-reordered workload tagged with depth-1 prefix
/// keys, arriving in bursts of `burst` every `gap_s` seconds — the
/// batch-arrival shape that keeps tight queues backpressured for most of
/// the sweep.
fn bursty_workload(rows: usize, burst: usize, gap_s: f64) -> Vec<ClusterRequest> {
    let mut table = Table::new(Schema::of_strings(&["review", "product"]));
    for i in 0..rows {
        table
            .push_row(vec![
                format!("review {i}: unique words about delivery {}", i % 7).into(),
                format!(
                    "Product {} — long shared description with warranty terms \
                     and compatibility notes for the optimizer",
                    i / 6
                )
                .into(),
            ])
            .unwrap();
    }
    let query = LlmQuery::filter(
        "pipeline-differential",
        "Is the review positive? Answer ONLY 'Yes' or 'No'.",
        vec!["product".into(), "review".into()],
        vec!["Yes".into(), "No".into()],
        "Yes",
        2.0,
    );
    let encoded = encode_table(&Tokenizer::new(), &table, &query).unwrap();
    let solution = Ggr::default()
        .reorder(&encoded.reorder, &FunctionalDeps::empty(2))
        .unwrap();
    let requests = plan_requests(&encoded, &solution.plan, &query);
    let keys = solution.plan.prefix_keys(&encoded.reorder, 1);
    let mut tagged = tag_requests(requests, &keys);
    for (i, r) in tagged.iter_mut().enumerate() {
        r.arrival_s = (i / burst) as f64 * gap_s;
    }
    tagged
}

fn tight_sim(replicas: usize, queue_cap: usize) -> ClusterSim {
    common::cluster_sim(replicas, queue_cap)
}

/// Acceptance: batch-arrival sweeps through backpressure macro-step (the
/// counter is non-zero) and still produce reports equal to the
/// single-stepped oracle, under all four built-in routers.
#[test]
fn macro_stepped_backpressure_equals_single_stepped_under_all_routers() {
    type MakeRouter = fn() -> Box<dyn Router>;
    let requests = bursty_workload(72, 24, 1.5);
    let routers: [(&str, MakeRouter); 4] = [
        ("round-robin", || Box::new(RoundRobin)),
        ("least-loaded", || Box::new(LeastLoaded)),
        ("prefix-affinity", || Box::new(PrefixAffinity::default())),
        ("prefix-affinity-bounded", || {
            Box::new(PrefixAffinity::bounded(1.25))
        }),
    ];
    for (name, make) in routers {
        let coarse: ClusterReport = tight_sim(2, 1).run(&mut *make(), &requests).unwrap();
        let fine: ClusterReport = tight_sim(2, 1)
            .run_single_stepped(&mut *make(), &requests)
            .unwrap();
        assert_eq!(coarse, fine, "{name}: macro-stepping changed the schedule");
        assert_eq!(coarse.completed, requests.len(), "{name} lost requests");
        assert!(
            coarse.backpressure_macro_steps > 0,
            "{name}: backpressured phases still single-step"
        );
        assert_eq!(
            fine.backpressure_macro_steps, 0,
            "{name}: the oracle must not macro-step"
        );
    }
}

/// A custom router that does not declare the retry-insensitive contract: the
/// dispatcher stays conservative (no backpressure macro-steps) and the
/// schedule still matches the oracle.
#[test]
fn conservative_custom_router_never_macro_steps_backpressure() {
    struct Wrapped(RoundRobin);
    impl Router for Wrapped {
        fn name(&self) -> &'static str {
            "wrapped-round-robin"
        }
        fn route(&mut self, prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
            self.0.route(prefix_key, replicas)
        }
        // retry_insensitive() deliberately left at the default `false`.
    }
    let requests = bursty_workload(48, 16, 1.5);
    let coarse = tight_sim(2, 1)
        .run(&mut Wrapped(RoundRobin), &requests)
        .unwrap();
    let fine = tight_sim(2, 1)
        .run_single_stepped(&mut Wrapped(RoundRobin), &requests)
        .unwrap();
    assert_eq!(coarse, fine);
    assert_eq!(
        coarse.backpressure_macro_steps, 0,
        "conservative routers must not take the macro path"
    );
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

/// Star-expanded LLM calls pruned to the statement's referenced columns
/// return identical rows while reading strictly fewer prompt tokens; star
/// *projections* (which read every column by construction) are never pruned.
#[test]
fn projection_pruning_is_result_identical_and_reads_fewer_tokens() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 80);
    let sql = "SELECT movietitle FROM movies WHERE LLM('kids?', movies.*) = 'Yes' LIMIT 20";
    let pruned = run_sql(&ds, sql, OptimizerConfig::all(), "movies");
    let mut unpruned_opt = OptimizerConfig::all();
    unpruned_opt.prune_fields = false;
    let unpruned = run_sql(&ds, sql, unpruned_opt, "movies");
    let oracle = run_sql(&ds, sql, OptimizerConfig::none(), "movies");
    assert_same_results(&pruned, &unpruned, sql);
    assert_same_results(&pruned, &oracle, sql);
    assert!(
        pruned
            .notes
            .iter()
            .any(|n| n.contains("prune sql-where-movies")),
        "missing prune rewrite note: {:?}",
        pruned.notes
    );
    let tokens = |r: &SqlResult| -> u64 {
        r.stages
            .iter()
            .map(|s| s.report.engine.total_prompt_tokens)
            .sum()
    };
    assert!(
        tokens(&pruned) < tokens(&unpruned),
        "pruning did not shrink prompts: {} vs {}",
        tokens(&pruned),
        tokens(&unpruned)
    );

    // A star projection reads the whole row; nothing is provably ignored.
    let star = "SELECT LLM('summarize', movies.*) AS s FROM movies LIMIT 5";
    let a = run_sql(&ds, star, OptimizerConfig::all(), "movies");
    assert!(
        !a.notes.iter().any(|n| n.contains("prune")),
        "star projections must not be pruned: {:?}",
        a.notes
    );
    let mut no_prune = OptimizerConfig::all();
    no_prune.prune_fields = false;
    let b = run_sql(&ds, star, no_prune, "movies");
    assert_same_results(&a, &b, star);
}

// ---------------------------------------------------------------------------
// Pipeline × chaos composition
// ---------------------------------------------------------------------------

fn with_faults(mut opt: OptimizerConfig, faults: StatementFaults) -> OptimizerConfig {
    opt.faults = Some(faults);
    opt
}

/// Every original row that exhausted the fault budget, across all the
/// statement's LLM operators, sorted. The note *strings* legitimately
/// differ between physical modes (pipelined execution annotates per
/// micro-batch, the relay per operator); the row *set* must not.
fn degraded_rows(r: &SqlResult) -> Vec<usize> {
    let mut rows: Vec<usize> = r
        .stages
        .iter()
        .flat_map(|s| s.failed_rows.iter().copied())
        .collect();
    rows.sort_unstable();
    rows
}

/// Zero-loss ledger: every row offered to an LLM operator is either
/// answered (an output record) or recorded in the failed-rows ledger —
/// nothing vanishes, under fan-out exactly as under the relay.
fn assert_stage_ledgers(r: &SqlResult, context: &str) {
    for (i, stage) in r.stages.iter().enumerate() {
        assert_eq!(
            stage.outputs.len() + stage.failed_rows.len(),
            stage.report.opt.rows_in as usize,
            "{context}: stage {i} lost rows \
             (outputs {} + failed {} != offered {})",
            stage.outputs.len(),
            stage.failed_rows.len(),
            stage.report.opt.rows_in
        );
        for row in &stage.failed_rows {
            assert!(
                !stage.outputs.iter().any(|o| o.row == *row),
                "{context}: stage {i} row {row} is both failed and answered"
            );
        }
    }
}

/// Statement fault injection composes with pipelined fan-out: the failure
/// rolls are pure in (seed, original row, attempt) — independent of which
/// replica served the call — so a faulty pipelined run returns exactly the
/// faulty sequential relay's rows, drops exactly the same degraded rows,
/// and keeps the zero-loss ledger on every tier-1 dataset.
#[test]
fn pipelined_fanout_under_faults_matches_sequential_and_loses_no_rows() {
    let faults = StatementFaults::new(200_000, 11).with_attempts(2);
    let mut total_retries = 0u64;
    let mut total_failed = 0usize;
    for id in DatasetId::all() {
        let ds = Dataset::generate_with_rows(id, 60);
        let names = ds.table.schema().names();
        let (c0, c1) = (names[0].to_string(), names[1 % names.len()].to_string());
        let sql = format!(
            "SELECT {c0} FROM t WHERE LLM('a?', {c0}, {c1}) = 'Yes' \
             AND LLM('b?', {c1}) <> 'No'"
        );
        let piped = run_sql(&ds, &sql, with_faults(pipelined(), faults), "t");
        let sequential = run_sql(&ds, &sql, with_faults(OptimizerConfig::all(), faults), "t");
        let context = format!("{}: {sql}", id.name());
        assert_same_results(&piped, &sequential, &context);
        assert_eq!(
            degraded_rows(&piped),
            degraded_rows(&sequential),
            "{context}: degraded-row sets diverged"
        );
        assert_stage_ledgers(&piped, &context);
        assert_stage_ledgers(&sequential, &context);
        assert!(
            piped
                .notes
                .iter()
                .any(|n| n.contains("pipelined execution")),
            "{context}: fault injection disabled the pipeline"
        );
        total_retries += piped
            .stages
            .iter()
            .map(|s| s.report.opt.llm_retries)
            .sum::<u64>();
        total_failed += piped
            .stages
            .iter()
            .map(|s| s.failed_rows.len())
            .sum::<usize>();
    }
    assert!(total_retries > 0, "fault injection never engaged");
    assert!(
        total_failed > 0,
        "no row ever exhausted the budget — the degraded path went untested"
    );
}

/// `AVG(LLM(...))` under fan-out + faults: the aggregate is computed over
/// the surviving rows only, identically to the sequential relay.
#[test]
fn pipelined_aggregate_under_faults_matches_sequential() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 90);
    let sql = "SELECT AVG(LLM('rate', reviewcontent)) AS score FROM movies \
               WHERE LLM('keep?', movietitle) <> 'Yes'";
    let faults = StatementFaults::new(250_000, 5).with_attempts(2);
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let run = |opt: OptimizerConfig| {
        let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
        runner.register("movies", &ds.table, &ds.fds);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".to_string()
            } else {
                ((row % 5) + 1).to_string()
            }
        };
        runner.run(sql, &truth).unwrap()
    };
    let piped = run(with_faults(pipelined(), faults));
    let sequential = run(with_faults(OptimizerConfig::all(), faults));
    assert_same_results(&piped, &sequential, sql);
    assert_eq!(degraded_rows(&piped), degraded_rows(&sequential));
    assert_stage_ledgers(&piped, sql);
    assert!(piped.aggregate.is_some(), "aggregate lost under faults");
}

/// Strict fault mode (no partial results) composes too: when a row
/// exhausts its budget, the pipelined statement fails with exactly the
/// same typed error — same row, same attempt count — as the sequential
/// relay, instead of wedging a replica group.
#[test]
fn pipelined_strict_faults_fail_identically_to_sequential() {
    let ds = Dataset::generate_with_rows(DatasetId::Products, 60);
    let sql = "SELECT product_title FROM products WHERE LLM('useful?', text) = 'Yes'";
    let faults = StatementFaults::new(400_000, 3).with_attempts(1).strict();
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let run = |opt: OptimizerConfig| {
        let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
        runner.register("products", &ds.table, &ds.fds);
        let truth = |row: usize| {
            if row.is_multiple_of(3) {
                "Yes".to_string()
            } else {
                "No".to_string()
            }
        };
        runner.run(sql, &truth)
    };
    let piped = run(with_faults(pipelined(), faults));
    let sequential = run(with_faults(OptimizerConfig::all(), faults));
    let piped_err = piped
        .expect_err("40% error rate on one attempt must fail")
        .to_string();
    let sequential_err = sequential
        .expect_err("sequential must fail too")
        .to_string();
    assert_eq!(
        piped_err, sequential_err,
        "fan-out changed which row failed first"
    );
    assert!(
        piped_err.contains("unavailable") || piped_err.contains("attempt"),
        "not the typed LLM-unavailable error: {piped_err}"
    );
}

/// Pruning composes with pipelined fan-out: the full stack (prune +
/// micro-batches + replicas) still equals the oracle.
#[test]
fn pruning_composes_with_pipelined_fanout() {
    let ds = Dataset::generate_with_rows(DatasetId::Bird, 66);
    let sql = "SELECT PostId FROM bird \
               WHERE LLM('stats?', bird.*) = 'Yes' AND LLM('old?', PostDate) <> 'Yes'";
    let piped = run_sql(&ds, sql, pipelined(), "bird");
    let oracle = run_sql(&ds, sql, OptimizerConfig::none(), "bird");
    assert_same_results(&piped, &oracle, sql);
    assert!(piped.notes.iter().any(|n| n.contains("prune")));
    assert!(piped
        .notes
        .iter()
        .any(|n| n.contains("pipelined execution")));
}
