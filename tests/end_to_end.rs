//! Cross-crate integration: datasets → optimizer → serving simulator →
//! relational results, checking the paper's headline relationships hold on
//! scaled-down versions of every benchmark dataset.

use llmqo::core::{Ggr, OriginalOrder};
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{QueryExecutor, QueryKind};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
};
use llmqo::tokenizer::Tokenizer;

fn engine_8b(cache: bool) -> SimEngine {
    let config = if cache {
        EngineConfig::default()
    } else {
        EngineConfig::no_cache()
    };
    SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        config,
    )
}

#[test]
fn ggr_dominates_original_on_every_dataset() {
    for id in DatasetId::all() {
        let ds = Dataset::generate_with_rows(id, 250);
        let query = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .unwrap();
        let truth = ds.truth_fn(query);
        let engine = engine_8b(true);
        let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
        let orig = executor
            .execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth)
            .unwrap();
        let ggr = executor
            .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
            .unwrap();
        // At this scale some datasets sit at the cache ceiling under both
        // orderings (tiny entity pools keep everything in the cache window),
        // and block-boundary alignment can wobble a point either way, so the
        // engine-level comparison carries a tolerance; the field-level PHC
        // below is the strict, structural invariant.
        assert!(
            ggr.report.engine.prefix_hit_rate() >= orig.report.engine.prefix_hit_rate() - 0.02,
            "{}: GGR PHR {} well below original {}",
            id.name(),
            ggr.report.engine.prefix_hit_rate(),
            orig.report.engine.prefix_hit_rate()
        );
        // JCT tolerance is loose at this scale for the same ceiling reason;
        // `no_cache_is_slowest_arm` asserts the strict ordering where the
        // structure guarantees it, and the full-scale bench bins measure the
        // real ratios.
        assert!(
            ggr.report.engine.job_completion_time_s
                <= orig.report.engine.job_completion_time_s * 1.15,
            "{}: GGR slower than original ({} vs {})",
            id.name(),
            ggr.report.engine.job_completion_time_s,
            orig.report.engine.job_completion_time_s
        );
        assert!(
            ggr.report.field_phc.phc >= orig.report.field_phc.phc,
            "{}",
            id.name()
        );
    }
}

#[test]
fn no_cache_is_slowest_arm() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 300);
    let query = ds.query_of_kind(QueryKind::Filter).unwrap();
    let truth = ds.truth_fn(query);
    let cached = engine_8b(true);
    let uncached = engine_8b(false);
    let exec_c = QueryExecutor::new(&cached, &OracleLlm, Tokenizer::new());
    let exec_u = QueryExecutor::new(&uncached, &OracleLlm, Tokenizer::new());
    let no_cache = exec_u
        .execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth)
        .unwrap();
    let orig = exec_c
        .execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth)
        .unwrap();
    let ggr = exec_c
        .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
        .unwrap();
    let (t_none, t_orig, t_ggr) = (
        no_cache.report.engine.job_completion_time_s,
        orig.report.engine.job_completion_time_s,
        ggr.report.engine.job_completion_time_s,
    );
    assert!(t_none > t_orig, "no-cache {t_none} vs original {t_orig}");
    assert!(t_orig > t_ggr, "original {t_orig} vs ggr {t_ggr}");
    assert_eq!(no_cache.report.engine.cached_prompt_tokens, 0);
}

#[test]
fn reordering_preserves_results_on_all_query_kinds() {
    for id in [DatasetId::Movies, DatasetId::Products] {
        let ds = Dataset::generate_with_rows(id, 150);
        let engine = engine_8b(true);
        let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
        for query in &ds.queries {
            if query.name.contains("multi") {
                continue;
            }
            let truth = ds.truth_fn(query);
            let a = executor
                .execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth)
                .unwrap();
            let b = executor
                .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
                .unwrap();
            assert_eq!(a.outputs, b.outputs, "{}: outputs differ", query.name);
            assert_eq!(a.selected_rows, b.selected_rows, "{}", query.name);
            assert_eq!(a.aggregate, b.aggregate, "{}", query.name);
        }
    }
}

#[test]
fn multi_invocation_pipeline_runs_both_stages() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 120);
    let (s1, s2) = ds.multi_stages().unwrap();
    let engine = engine_8b(true);
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let t1 = ds.truth_fn(s1);
    let t2 = ds.truth_fn(s2);
    let outs = executor
        .execute_multi(
            &ds.table,
            &[s1, s2],
            &Ggr::default(),
            &ds.fds,
            &[&*t1, &*t2],
        )
        .unwrap();
    assert_eq!(outs.len(), 2);
    // Stage 2 ran over exactly the rows stage 1 selected.
    assert_eq!(outs[1].outputs.len(), outs[0].selected_rows.len());
    // Stage-1 selectivity follows the uniform truth distribution (~1/2).
    let frac = outs[0].selected_rows.len() as f64 / 120.0;
    assert!((0.3..0.7).contains(&frac), "selectivity {frac}");
}

#[test]
fn aggregation_is_order_insensitive_and_near_center() {
    let ds = Dataset::generate_with_rows(DatasetId::Products, 200);
    let query = ds.query_of_kind(QueryKind::Aggregation).unwrap();
    let truth = ds.truth_fn(query);
    let engine = engine_8b(true);
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let a = executor
        .execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth)
        .unwrap();
    let b = executor
        .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
        .unwrap();
    assert_eq!(a.aggregate, b.aggregate);
    let avg = a.aggregate.unwrap();
    assert!(
        (2.5..3.5).contains(&avg),
        "uniform 1..5 labels average ≈ 3, got {avg}"
    );
}

#[test]
fn seventy_b_cluster_runs_and_is_slower_than_8b() {
    let ds = Dataset::generate_with_rows(DatasetId::Beer, 200);
    let query = ds.query_of_kind(QueryKind::Filter).unwrap();
    let truth = ds.truth_fn(query);
    let small = engine_8b(true);
    let big = SimEngine::new(
        Deployment::new(
            ModelSpec::llama3_70b(),
            GpuCluster::tensor_parallel(GpuSpec::l4(), 8),
        ),
        EngineConfig::default(),
    );
    let exec_small = QueryExecutor::new(&small, &OracleLlm, Tokenizer::new());
    let exec_big = QueryExecutor::new(&big, &OracleLlm, Tokenizer::new());
    let r8 = exec_small
        .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
        .unwrap();
    let r70 = exec_big
        .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
        .unwrap();
    assert!(
        r70.report.engine.job_completion_time_s > r8.report.engine.job_completion_time_s,
        "70B on 8xL4 should still be slower than 8B on one L4 for prefill-bound jobs"
    );
}

#[test]
fn one_b_model_gains_less_from_reordering_than_8b() {
    // Appendix D.2's shape: similar hit rates, smaller runtime ratio.
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 400);
    let query = ds.query_of_kind(QueryKind::Filter).unwrap();
    let truth = ds.truth_fn(query);
    let ratio_for = |model: ModelSpec| {
        let engine = SimEngine::new(
            Deployment::new(model, GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        );
        let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
        let orig = executor
            .execute(&ds.table, query, &OriginalOrder, &ds.fds, &truth)
            .unwrap();
        let ggr = executor
            .execute(&ds.table, query, &Ggr::default(), &ds.fds, &truth)
            .unwrap();
        orig.report.engine.job_completion_time_s / ggr.report.engine.job_completion_time_s
    };
    let r8 = ratio_for(ModelSpec::llama3_8b());
    let r1 = ratio_for(ModelSpec::llama3_2_1b());
    assert!(r8 > r1, "8B ratio {r8} should exceed 1B ratio {r1}");
    assert!(r1 >= 1.0, "reordering never hurts: {r1}");
}
