//! Scaled-down checks of the paper's artifacts: Figure 1's exact bounds,
//! Table 1's shapes, Table 6's GGR-vs-OPHR gap, and the Table 3/4 cost
//! mechanics. The full-size regenerations live in `llmqo-bench` binaries;
//! these tests guard the same relationships in CI time.

use llmqo::core::{phc_of_plan, Cell, FunctionalDeps, Ggr, Ophr, ReorderTable, Reorderer, ValueId};
use llmqo::costmodel::{AnthropicCache, OpenAiCache, Pricing, ProviderCache, Usage};
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{encode_table, project_fds, QueryKind};
use llmqo::tokenizer::Tokenizer;

#[test]
fn figure_1a_bound_is_tight() {
    // Unique first field, m−1 constant fields: optimized PHC = (n−1)(m−1).
    let (n, m) = (7u32, 4u32);
    let cols = (0..m).map(|f| format!("f{f}")).collect();
    let mut t = ReorderTable::new(cols).unwrap();
    for r in 0..n {
        let mut row = vec![Cell::new(ValueId::from_raw(100 + r), 1)];
        row.extend((1..m).map(|f| Cell::new(ValueId::from_raw(f), 1)));
        t.push_row(row).unwrap();
    }
    let fds = FunctionalDeps::empty(m as usize);
    let ggr = Ggr::default().reorder(&t, &fds).unwrap();
    assert_eq!(phc_of_plan(&t, &ggr.plan).phc, u64::from((n - 1) * (m - 1)));
}

#[test]
fn figure_1b_fixed_vs_per_row_gap_is_m_fold() {
    let x = 5u32;
    let cols = (0..3).map(|f| format!("f{f}")).collect();
    let mut t = ReorderTable::new(cols).unwrap();
    let mut unique = 1000;
    for field in 0..3u32 {
        for _ in 0..x {
            let row: Vec<Cell> = (0..3)
                .map(|f| {
                    if f == field {
                        Cell::new(ValueId::from_raw(field + 1), 1)
                    } else {
                        unique += 1;
                        Cell::new(ValueId::from_raw(unique), 1)
                    }
                })
                .collect();
            t.push_row(row).unwrap();
        }
    }
    let fds = FunctionalDeps::empty(3);
    let ggr = Ggr::default().reorder(&t, &fds).unwrap();
    let opt = Ophr::unbounded().reorder(&t, &fds).unwrap();
    assert_eq!(phc_of_plan(&t, &ggr.plan).phc, u64::from(3 * (x - 1)));
    assert_eq!(opt.claimed_phc, u64::from(3 * (x - 1)));
}

#[test]
fn table1_shapes_hold_for_scaled_generators() {
    let tok = Tokenizer::new();
    for id in DatasetId::all() {
        let paper = id.paper();
        let ds = Dataset::generate_with_rows(id, 300);
        assert_eq!(ds.table.ncols(), paper.nfields, "{}", id.name());
        let q = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .unwrap();
        let e = encode_table(&tok, &ds.table, q).unwrap();
        let input_avg = e.total_prompt_tokens() as f64 / 300.0;
        let target = paper.input_avg as f64;
        // Generators are calibrated primarily to the paper's *hit rates*
        // (Table 2); with this repo's tokenizer that costs some input-length
        // fidelity, most visibly on Beer whose prompts are dominated by the
        // fixed instruction. EXPERIMENTS.md discusses the trade-off.
        assert!(
            (input_avg - target).abs() / target < 0.45,
            "{}: input_avg {input_avg:.0} vs paper {target} (>45% off)",
            id.name()
        );
    }
}

#[test]
fn table6_ggr_is_near_optimal_on_dataset_prefixes() {
    // Appendix D.1's finding, on the two samples OPHR solves fastest.
    let tok = Tokenizer::new();
    for (id, nrows) in [(DatasetId::Beer, 10usize), (DatasetId::Squad, 10)] {
        let ds = Dataset::generate_with_rows(id, 40);
        let q = ds
            .query_of_kind(QueryKind::Filter)
            .or_else(|| ds.query_of_kind(QueryKind::Rag))
            .unwrap();
        let e = encode_table(&tok, &ds.table, q).unwrap();
        let table = e.reorder.head(nrows);
        let fds = project_fds(&ds.fds, &e.used_cols);
        let opt = Ophr::with_budget(std::time::Duration::from_secs(30))
            .reorder(&table, &fds)
            .unwrap_or_else(|_| panic!("{}-{nrows} should solve in budget", id.name()));
        let ggr = Ggr::default().reorder(&table, &fds).unwrap();
        let opt_rate = phc_of_plan(&table, &opt.plan).hit_rate();
        let ggr_rate = phc_of_plan(&table, &ggr.plan).hit_rate();
        assert!(ggr_rate <= opt_rate + 1e-12, "{}", id.name());
        assert!(
            opt_rate - ggr_rate < 0.05,
            "{}: GGR {ggr_rate:.3} vs OPHR {opt_rate:.3} (paper: within ~2pp)",
            id.name()
        );
    }
}

#[test]
fn table3_mechanics_original_misses_minimum_ggr_clears_it() {
    // Prompt families sharing a long prefix qualify for OpenAI caching only
    // when scheduled so the shared prefix exceeds 1 024 tokens — which is
    // exactly what reordering achieves.
    let mut interleaved = OpenAiCache::new();
    let mut grouped = OpenAiCache::new();
    let family = |fam: u32, member: u32| -> Vec<u32> {
        let mut p: Vec<u32> = (0..1400u32).map(|i| fam * 100_000 + i).collect();
        p.extend((0..200u32).map(|i| 50_000_000 + fam * 1000 + member * 300 + i));
        p
    };
    let mut usage_inter = Usage::default();
    let mut usage_group = Usage::default();
    // Interleaved: A B A B; grouped: A A B B. (OpenAI's cache persists, so
    // both see hits; grouping is what matters for *local* caches — here we
    // verify the provider accounting itself.)
    for (f, m) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
        usage_inter.add(interleaved.process(&family(f, m), 2));
    }
    for (f, m) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        usage_group.add(grouped.process(&family(f, m), 2));
    }
    assert!(usage_group.hit_rate() > 0.3);
    assert_eq!(usage_group.cached_input, usage_inter.cached_input);
    // Families with <1024 shared tokens never hit.
    let mut cold = OpenAiCache::new();
    let short = |m: u32| -> Vec<u32> {
        let mut p: Vec<u32> = (0..900u32).collect();
        p.extend((0..300u32).map(|i| 9_000_000 + m * 1000 + i));
        p
    };
    let a = cold.process(&short(0), 2);
    let b = cold.process(&short(1), 2);
    assert_eq!(a.cached_input + b.cached_input, 0);
}

#[test]
fn table4_savings_bands_match_paper() {
    // With the paper's own Table 2 hit rates, the analytical model must land
    // inside the paper's reported savings bands.
    let openai = Pricing::gpt4o_mini();
    let anthropic = Pricing::claude35_sonnet();
    let rows = [
        (0.346, 0.857),
        (0.267, 0.833),
        (0.104, 0.848),
        (0.118, 0.566),
        (0.499, 0.801),
        (0.112, 0.674),
        (0.110, 0.697),
    ];
    for (orig, ggr) in rows {
        let s_oa = openai.estimated_savings(orig, ggr);
        let s_an = anthropic.estimated_savings(orig, ggr);
        assert!((0.18..0.42).contains(&s_oa), "OpenAI {s_oa}");
        assert!((0.40..0.85).contains(&s_an), "Anthropic {s_an}");
    }
}

#[test]
fn anthropic_conservative_policy_caps_hits_at_breakpoint() {
    let mut cache = AnthropicCache::new();
    let p: Vec<u32> = (0..3000).collect();
    cache.process(&p, 1);
    let u = cache.process(&p, 1);
    // Identical 3 000-token prompts still only read 1 024 cached tokens —
    // the paper's explanation for Anthropic's 2× lower measured hit rate.
    assert_eq!(u.cached_input, 1024);
    assert!(u.hit_rate() < 0.35);
}
