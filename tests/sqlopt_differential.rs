//! Differential contract of the SQL-aware logical optimizer (ISSUE 3):
//! with every optimization on, query results are row-for-row identical to
//! the optimizations-off oracle on all tier-1 datasets, while the
//! `ExecutionReport` shows the savings — ≥30% fewer LLM calls on
//! duplicate-heavy filters and strictly fewer engine requests under
//! `LIMIT k` than full materialization.

mod common;

use common::{engine, run_sql};
use llmqo::core::Ggr;
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{ExecOptions, OptimizerConfig, QueryExecutor, SqlResult, SqlRunner};
use llmqo::serve::OracleLlm;
use llmqo::tokenizer::Tokenizer;

/// Dedup at the executor level: byte-identical outputs for every query of
/// every tier-1 dataset, never more engine requests than rows.
#[test]
fn dedup_execution_is_output_identical_on_all_datasets() {
    for (id, ds) in common::tier1_datasets(80) {
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        for query in &ds.queries {
            let truth = ds.truth_fn(query);
            let off = executor
                .execute(&ds.table, query, &solver, &ds.fds, &truth)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", id.name(), query.name));
            let on = executor
                .execute_with(
                    &ds.table,
                    query,
                    &solver,
                    &ds.fds,
                    &truth,
                    ExecOptions::deduped(),
                )
                .unwrap_or_else(|e| panic!("{}/{}: {e}", id.name(), query.name));
            assert_eq!(
                off.outputs,
                on.outputs,
                "{}/{}: dedup changed outputs",
                id.name(),
                query.name
            );
            assert_eq!(off.selected_rows, on.selected_rows, "{}", query.name);
            assert_eq!(off.aggregate, on.aggregate, "{}", query.name);
            assert!(
                on.report.opt.llm_calls <= off.report.opt.llm_calls,
                "{}/{}: dedup issued more requests",
                id.name(),
                query.name
            );
            assert_eq!(
                on.report.opt.llm_calls + on.report.opt.rows_deduped,
                on.report.opt.rows_in,
                "{}/{}: dedup accounting",
                id.name(),
                query.name
            );
        }
    }
}

/// SQL statements with conjunctive WHERE clauses, negation, projections and
/// LIMIT: the optimized plans return exactly what the oracle returns.
#[test]
fn sql_optimizer_is_result_identical_on_movies_products_bird() {
    let cases: &[(DatasetId, &str, &[&str])] = &[
        (
            DatasetId::Movies,
            "movies",
            &[
                "SELECT movietitle FROM movies \
                 WHERE LLM('kids?', movieinfo, reviewcontent, movietitle) = 'Yes'",
                "SELECT movietitle FROM movies \
                 WHERE LLM('kids?', reviewcontent, movieinfo) = 'Yes' \
                 AND reviewtype = 'Fresh' \
                 AND LLM('fresh?', reviewtype, topcritic) = 'Yes' LIMIT 7",
                "SELECT LLM('summarize', movieinfo, reviewcontent) AS s FROM movies \
                 WHERE LLM('keep?', reviewcontent) <> 'No' LIMIT 5",
            ],
        ),
        (
            DatasetId::Products,
            "products",
            &[
                "SELECT product_title FROM products \
                 WHERE LLM('useful?', text, review_title) = 'Yes' \
                 AND verified_purchase = 'true' LIMIT 10",
                "SELECT product_title FROM products \
                 WHERE rating >= '4' AND LLM('positive?', rating, verified_purchase) = 'Yes'",
            ],
        ),
        (
            DatasetId::Bird,
            "bird",
            &["SELECT PostId FROM bird \
                 WHERE LLM('stats?', Body, Text) = 'Yes' AND LLM('old?', PostDate) <> 'Yes' \
                 LIMIT 6"],
        ),
    ];
    for &(id, name, statements) in cases {
        let ds = Dataset::generate_with_rows(id, 120);
        for sql in statements {
            let on = run_sql(&ds, sql, OptimizerConfig::all(), name);
            let off = run_sql(&ds, sql, OptimizerConfig::none(), name);
            assert_eq!(on.columns, off.columns, "{sql}");
            assert_eq!(on.rows, off.rows, "optimizer changed results for {sql}");
            assert_eq!(on.aggregate, off.aggregate, "{sql}");
        }
    }
}

/// AVG over a WHERE-filtered row set agrees between optimizer modes.
#[test]
fn sql_optimizer_is_aggregate_identical() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 90);
    let sql = "SELECT AVG(LLM('rate', reviewcontent, movieinfo)) AS score FROM movies \
               WHERE topcritic = 'true'";
    let run = |opt: OptimizerConfig| {
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
        runner.register("movies", &ds.table, &ds.fds);
        let truth = |row: usize| ((row % 5) + 1).to_string();
        runner.run(sql, &truth).unwrap()
    };
    let on = run(OptimizerConfig::all());
    let off = run(OptimizerConfig::none());
    assert_eq!(on.aggregate, off.aggregate);
    assert_eq!(on.rows, off.rows);
    assert!(on.aggregate.is_some());
    assert!(
        on.stages[0].report.opt.rows_in < ds.table.nrows() as u64,
        "the SQL predicate should have narrowed the aggregate's input"
    );
}

/// Acceptance: ≥30% fewer LLM calls on duplicate-heavy filter queries.
#[test]
fn dedup_saves_at_least_30_percent_on_duplicate_heavy_filters() {
    let cases: &[(DatasetId, &str, &str)] = &[
        (
            DatasetId::Movies,
            "movies",
            "SELECT movietitle FROM movies WHERE LLM('fresh?', reviewtype, topcritic) = 'Yes'",
        ),
        (
            DatasetId::Products,
            "products",
            "SELECT product_title FROM products \
             WHERE LLM('verified?', verified_purchase, rating) = 'Yes'",
        ),
        (
            DatasetId::Bird,
            "bird",
            "SELECT PostId FROM bird WHERE LLM('stats?', Body, PostDate, PostId) = 'Yes'",
        ),
    ];
    for &(id, name, sql) in cases {
        let ds = Dataset::generate_with_rows(id, 150);
        let on = run_sql(&ds, sql, OptimizerConfig::all(), name);
        let off = run_sql(&ds, sql, OptimizerConfig::none(), name);
        assert_eq!(on.rows, off.rows, "{sql}");
        let (on_calls, off_calls) = (
            on.stages[0].report.opt.llm_calls,
            off.stages[0].report.opt.llm_calls,
        );
        assert_eq!(off_calls, 150);
        assert!(
            on_calls * 10 <= off_calls * 7,
            "{}: {on_calls} calls vs {off_calls} is < 30% savings",
            id.name()
        );
        assert!(on.stages[0].report.opt.prefill_tokens_saved > 0);
    }
}

/// Acceptance: strictly fewer engine requests under `LIMIT k` than full
/// materialization.
#[test]
fn lazy_limit_uses_strictly_fewer_engine_requests() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 250);
    let sql = "SELECT movietitle FROM movies \
               WHERE LLM('kids?', movieinfo, reviewcontent) = 'Yes' LIMIT 5";
    let on = run_sql(&ds, sql, OptimizerConfig::all(), "movies");
    let off = run_sql(&ds, sql, OptimizerConfig::none(), "movies");
    assert_eq!(on.rows, off.rows);
    assert_eq!(on.rows.len(), 5);
    let total = |r: &SqlResult| -> u64 { r.stages.iter().map(|s| s.report.opt.llm_calls).sum() };
    assert!(
        total(&on) < total(&off),
        "lazy {} vs full {}",
        total(&on),
        total(&off)
    );
    // Fewer requests ⇒ fewer engine completions too.
    let completed =
        |r: &SqlResult| -> usize { r.stages.iter().map(|s| s.report.engine.completed).sum() };
    assert!(completed(&on) < completed(&off));
}

/// EXPLAIN shows the rewrites without executing anything.
#[test]
fn explain_surfaces_rewrites_on_a_dataset_statement() {
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 60);
    let eng = engine();
    let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver);
    runner.register("movies", &ds.table, &ds.fds);
    let text = runner
        .explain(
            "SELECT movietitle FROM movies \
             WHERE LLM('kids?', movieinfo, reviewcontent) = 'Yes' \
             AND reviewtype = 'Fresh' LIMIT 10",
        )
        .unwrap();
    assert!(text.contains("Limit 10"));
    assert!(text.contains("SqlFilter reviewtype = 'Fresh'"));
    assert!(text.contains("LlmFilter sql-where-movies"));
    assert!(text.contains("-- rewrite: reordered WHERE"));
}
