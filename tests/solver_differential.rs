//! Differential tests for the columnar solver core.
//!
//! The optimized [`Ggr`]/[`Ophr`] solvers are *engineering* rewrites of the
//! frozen [`GgrReference`]/[`OphrReference`] transcriptions: every plan and
//! every claimed PHC must be byte-for-byte identical, across configurations,
//! random tables (with and without functional dependencies), and every
//! dataset the tier-1 suite exercises. Any divergence here means the
//! columnar core changed *behaviour*, not just speed, and is a bug.

mod common;

use llmqo::core::{
    Cell, FallbackOrdering, FunctionalDeps, Ggr, GgrConfig, GgrReference, Ophr, OphrReference,
    ReorderTable, Reorderer, Solution, ValueId,
};
use llmqo::relational::{encode_table, project_fds};
use llmqo::tokenizer::Tokenizer;
use proptest::prelude::*;

/// Every GGR configuration family the differential suite exercises.
fn ggr_configs() -> Vec<GgrConfig> {
    let mut configs = vec![GgrConfig::paper(), GgrConfig::exhaustive()];
    for fallback in [
        FallbackOrdering::Adaptive,
        FallbackOrdering::GreedyPrefix,
        FallbackOrdering::StatFixed,
        FallbackOrdering::SortedFixed,
        FallbackOrdering::Original,
    ] {
        configs.push(GgrConfig {
            max_row_depth: Some(1),
            max_col_depth: Some(1),
            fallback,
            ..GgrConfig::paper()
        });
    }
    configs.push(GgrConfig {
        min_hitcount: Some(30),
        ..GgrConfig::exhaustive()
    });
    configs.push(GgrConfig {
        use_fds: false,
        ..GgrConfig::paper()
    });
    configs
}

fn assert_ggr_matches(t: &ReorderTable, fds: &FunctionalDeps, config: GgrConfig) {
    let opt = Ggr::new(config).reorder(t, fds).unwrap();
    let reference = GgrReference::new(config).reorder(t, fds).unwrap();
    assert_identical(&opt, &reference, &format!("GGR {config:?}"));
    opt.plan.validate(t).unwrap();
}

fn assert_identical(opt: &Solution, reference: &Solution, what: &str) {
    assert_eq!(
        opt.claimed_phc, reference.claimed_phc,
        "{what}: claimed PHC diverged"
    );
    assert_eq!(opt.plan, reference.plan, "{what}: plan diverged");
}

/// Random table strategy: per-column value pools so duplicates are common;
/// lengths are a function of (column, value) so exact-match semantics hold.
fn table_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = ReorderTable> {
    (1..=max_cols, 1..=max_rows)
        .prop_flat_map(move |(m, n)| {
            proptest::collection::vec(proptest::collection::vec(0u32..5, m), n)
        })
        .prop_map(|rows| {
            let m = rows[0].len();
            let cols = (0..m).map(|c| format!("c{c}")).collect();
            let mut t = ReorderTable::new(cols).unwrap();
            for row in &rows {
                let cells = row
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| {
                        Cell::new(
                            ValueId::from_raw(c as u32 * 16 + v),
                            1 + (v * 3 + c as u32) % 7,
                        )
                    })
                    .collect();
                t.push_row(cells).unwrap();
            }
            t
        })
}

/// FD-structured random table: column 0 is a key whose value *determines*
/// every column in `fd_group` (exact bijections), the rest are free.
fn fd_table_strategy(max_rows: usize) -> impl Strategy<Value = (ReorderTable, FunctionalDeps)> {
    (2..=16usize, 2..=max_rows)
        .prop_flat_map(|(keys, n)| {
            (
                Just(keys),
                proptest::collection::vec((0..keys as u32, 0u32..4), n),
            )
        })
        .prop_map(|(keys, rows)| {
            let cols = vec!["key".into(), "name".into(), "free".into(), "flag".into()];
            let mut t = ReorderTable::new(cols).unwrap();
            for &(k, free) in &rows {
                t.push_row(vec![
                    Cell::new(ValueId::from_raw(k), 2 + k % 3),
                    // Derived bijectively from the key: exact FD key ↔ name.
                    Cell::new(ValueId::from_raw(100 + k), 4 + k % 5),
                    Cell::new(ValueId::from_raw(200 + free * 7), 3),
                    Cell::new(ValueId::from_raw(300 + free % 2), 1 + free % 2),
                ])
                .unwrap();
            }
            let _ = keys;
            let fds = FunctionalDeps::from_groups(4, vec![vec![0, 1]]).unwrap();
            (t, fds)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ggr_matches_reference_without_fds(t in table_strategy(24, 5)) {
        let fds = FunctionalDeps::empty(t.ncols());
        for config in ggr_configs() {
            assert_ggr_matches(&t, &fds, config);
        }
    }

    #[test]
    fn ggr_matches_reference_with_exact_fds(pair in fd_table_strategy(24)) {
        let (t, fds) = pair;
        for config in ggr_configs() {
            assert_ggr_matches(&t, &fds, config);
        }
        // Discovered FDs must also agree (they may find more groups than the
        // declared ones, e.g. accidental bijections on small samples).
        let discovered = FunctionalDeps::discover(&t);
        assert_ggr_matches(&t, &discovered, GgrConfig::paper());
    }

    #[test]
    fn ggr_matches_reference_with_deliberately_wrong_fds(t in table_strategy(16, 4)) {
        // Wrong (over-claimed) FDs stress the inferred-column scoring paths;
        // optimized and reference must still agree on every plan.
        let m = t.ncols();
        if m >= 2 {
            let fds = FunctionalDeps::from_groups(m, vec![(0..m as u32).collect()]).unwrap();
            for config in [GgrConfig::paper(), GgrConfig::exhaustive()] {
                assert_ggr_matches(&t, &fds, config);
            }
        }
    }

    #[test]
    fn ophr_matches_reference_on_small_tables(t in table_strategy(9, 3)) {
        let fds = FunctionalDeps::empty(t.ncols());
        let opt = Ophr::unbounded().reorder(&t, &fds).unwrap();
        let reference = OphrReference::unbounded().reorder(&t, &fds).unwrap();
        assert_identical(&opt, &reference, "OPHR");
        opt.plan.validate(&t).unwrap();
    }
}

/// Differential check over every dataset of the tier-1 suite: GGR at its
/// paper configuration on each dataset's first query encoding, OPHR on a
/// small prefix (it is exponential).
#[test]
fn solvers_match_reference_on_all_tier1_datasets() {
    let tokenizer = Tokenizer::new();
    for (id, ds) in common::tier1_datasets(120) {
        let query = ds.queries.first().expect("every dataset has queries");
        let encoded = encode_table(&tokenizer, &ds.table, query).expect("encoding succeeds");
        let fds = project_fds(&ds.fds, &encoded.used_cols);

        for config in [GgrConfig::paper(), GgrConfig::exhaustive()] {
            let opt = Ggr::new(config).reorder(&encoded.reorder, &fds).unwrap();
            let reference = GgrReference::new(config)
                .reorder(&encoded.reorder, &fds)
                .unwrap();
            assert_identical(&opt, &reference, &format!("GGR on {}", id.name()));
        }

        // OPHR is exponential in columns as well as rows; mirror the paper's
        // Appendix D.1 setup and compare on a cut-down prefix view.
        let keep: Vec<usize> = (0..encoded.reorder.ncols().min(4)).collect();
        let head = encoded.reorder.head(12).select_columns(&keep);
        let head_fds = FunctionalDeps::empty(head.ncols());
        let opt = Ophr::unbounded().reorder(&head, &head_fds).unwrap();
        let reference = OphrReference::unbounded()
            .reorder(&head, &head_fds)
            .unwrap();
        assert_identical(&opt, &reference, &format!("OPHR on {}", id.name()));
    }
}

/// Equivalence must hold even on *ill-formed* tables where one [`ValueId`]
/// recurs with different lengths. Well-formed encodings never produce such
/// tables (a fragment's token count is a property of the fragment), and
/// `push_row` now rejects them in debug builds — so this test goes through
/// `push_row_unchecked`. The differential contract must still not depend on
/// the invariant: group representatives are read from the view-local first
/// member, exactly as the references do.
#[test]
fn ggr_and_ophr_match_reference_when_a_value_recurs_with_different_lengths() {
    let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
    let rows = [
        (1u32, 1u32, 10u32, 4u32),
        (2, 3, 10, 4),
        (1, 9, 11, 7),
        (1, 9, 11, 7),
    ];
    for (va, la, vb, lb) in rows {
        t.push_row_unchecked(vec![
            Cell::new(ValueId::from_raw(va), la),
            Cell::new(ValueId::from_raw(100 + vb), lb),
        ])
        .unwrap();
    }
    let fds = FunctionalDeps::empty(2);
    for config in ggr_configs() {
        assert_ggr_matches(&t, &fds, config);
    }
    let opt = Ophr::unbounded().reorder(&t, &fds).unwrap();
    let reference = OphrReference::unbounded().reorder(&t, &fds).unwrap();
    assert_identical(&opt, &reference, "OPHR on ill-formed lengths");
}

/// The paper-configuration claimed score must stay bit-identical through the
/// float-heavy HITCOUNT path even on tables with large length skew.
#[test]
fn ggr_claims_match_on_length_skewed_table() {
    let mut t = ReorderTable::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
    for r in 0..60u32 {
        t.push_row(vec![
            Cell::new(ValueId::from_raw(r % 7), 1 + (r % 7) * 40),
            Cell::new(ValueId::from_raw(100 + r % 3), 911),
            Cell::new(ValueId::from_raw(200 + r), 2),
        ])
        .unwrap();
    }
    let fds = FunctionalDeps::discover(&t);
    for config in ggr_configs() {
        assert_ggr_matches(&t, &fds, config);
    }
}
